"""Asyncio network serving front-end: many clients, one pool.

The CLI ``serve`` loop (PR 4/7) reads a *single* stream; the paper's
serving experiments assume many simultaneous query and update clients
against one live dataset.  This module multiplexes thousands of client
connections onto the existing serving machinery:

* **Transport** — one ``asyncio`` TCP server speaking the newline-framed
  JSON protocol of :mod:`repro.engine.protocol`.  Connections are cheap
  coroutines; a blocked client never costs a thread.
* **Micro-batch coalescing** — queries from *all* connections funnel
  into one arrival-ordered dispatch queue.  The dispatcher opens a batch
  at the first pending query and closes it after ``RKNNT_SERVER_WINDOW_MS``
  milliseconds, at ``RKNNT_SERVER_MAX_BATCH`` queries, or when a
  non-query operation arrives — whichever comes first — then flushes the
  batch through :meth:`~repro.core.rknnt.RkNNTProcessor.query_batch`
  (and its persistent serving pool when ``workers > 0``).  Single-client
  latency stays bounded by the window; aggregate throughput scales with
  the batch, because the pool dispatch and the vectorized kernels
  amortise across every rider of it.
* **Consistency** — the dispatcher is strictly sequential: at most one
  batch is in flight, and ``insert``/``delete`` updates (arrival order
  preserved) apply only *between* flushes.  Every query of a batch
  therefore sees one consistent index version, reported back in its
  reply.  Flushes run on a :class:`~repro.engine.parallel.BatchHandle`
  dispatch thread so the event loop keeps accepting work meanwhile.
* **Resilience, end to end** — the per-batch deadline maps onto
  :class:`~repro.engine.resilience.Deadline` inside the engine; a
  saturated server answers a typed ``pool_saturated`` reply immediately
  (:class:`~repro.engine.resilience.AdmissionGate` backpressure, the
  connection stays open); worker crashes are retried/reseeded by the
  executor and, past the budget, served degraded in-process with
  identical answers.  No failure mode closes a connection.
* **Standing queries** — ``watch`` registers a server-side
  :class:`~repro.engine.continuous.Subscription`; every applied update
  pushes its non-empty :class:`~repro.engine.continuous.ResultDelta`\\ s
  to the owning connection as unsolicited events.  A subscription is
  private to the connection that registered it — ``unwatch`` across
  connections is refused, and a closing connection reaps its own.

``ServerThread`` wraps the server in a background event-loop thread for
tests and benchmarks; the CLI ``server`` command is the operational
entry point.  ``RKNNT_SERVER_LOG`` (a file path) makes the server log
its lifecycle and failures there, which CI uploads on failure.
"""

from __future__ import annotations

import asyncio
import itertools
import logging
import os
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.engine import protocol, resilience
from repro.engine.parallel import BatchHandle
from repro.engine.plan import VORONOI
from repro.engine.protocol import ProtocolError, Request
from repro.engine.resilience import (
    DeadlineExceeded,
    PoolSaturated,
    RkNNTError,
    UpdateStreamError,
)
from repro.geometry.kernels import BACKEND_AUTO, BACKEND_PYTHON
from repro.model.transition import Transition

_LOGGER = logging.getLogger("repro.engine.server")

#: ``RKNNT_SERVER_WINDOW_MS`` — micro-batch coalescing window: how long
#: the dispatcher holds an open batch for more queries to join.  ``0``
#: flushes immediately (still coalescing whatever is already queued).
WINDOW_ENV = "RKNNT_SERVER_WINDOW_MS"
DEFAULT_WINDOW_MS = 2.0

#: ``RKNNT_SERVER_MAX_BATCH`` — hard size cap per coalesced batch.
MAX_BATCH_ENV = "RKNNT_SERVER_MAX_BATCH"
DEFAULT_MAX_BATCH = 64

#: ``RKNNT_SERVER_LOG`` — when set, the server appends its lifecycle /
#: failure log to this file (CI uploads it when a soak test fails).
LOG_FILE_ENV = "RKNNT_SERVER_LOG"


def server_window_ms() -> float:
    """Coalescing window (``RKNNT_SERVER_WINDOW_MS``, default 2 ms)."""
    return float(
        resilience._env_number(WINDOW_ENV, DEFAULT_WINDOW_MS, 0.0, float)
    )


def server_max_batch() -> int:
    """Batch size cap (``RKNNT_SERVER_MAX_BATCH``, default 64)."""
    return int(
        resilience._env_number(MAX_BATCH_ENV, DEFAULT_MAX_BATCH, 1, int)
    )


#: Dispatcher shutdown sentinel (queue item).
_SHUTDOWN = object()


class _Connection:
    """Per-connection state: an outbox queue decouples reply/event writes
    from the dispatcher, so one slow client never stalls the server."""

    _ids = itertools.count()

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.id = next(_Connection._ids)
        self.writer = writer
        self.outbox: "asyncio.Queue[Optional[bytes]]" = asyncio.Queue()
        self.watches: Dict[int, Any] = {}
        self.closed = False

    def send(self, payload: Dict[str, Any]) -> None:
        if not self.closed:
            self.outbox.put_nowait(protocol.encode_line(payload))

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self.outbox.put_nowait(None)

    async def writer_loop(self) -> None:
        try:
            while True:
                chunk = await self.outbox.get()
                if chunk is None:
                    break
                self.writer.write(chunk)
                await self.writer.drain()
        except (ConnectionError, OSError):
            pass  # the reader side observes the loss and cleans up
        finally:
            self.closed = True
            try:
                self.writer.close()
            except (ConnectionError, OSError):
                pass


class _Pending:
    """One queued request: where it came from and how to answer it."""

    __slots__ = ("request", "connection", "future", "seq")

    def __init__(
        self,
        request: Request,
        connection: _Connection,
        future: "asyncio.Future[Dict[str, Any]]",
    ) -> None:
        self.request = request
        self.connection = connection
        self.future = future
        self.seq: Optional[int] = None


class _ConnClosed:
    """Internal queue item: reap a closed connection's subscriptions in
    dispatcher order (never concurrently with a flush)."""

    __slots__ = ("connection",)

    def __init__(self, connection: _Connection) -> None:
        self.connection = connection


class RkNNTServer:
    """The network serving front-end.  One instance per processor.

    Parameters mirror the CLI ``server`` command: ``k``/``method``/
    ``semantics``/``backend`` are the per-request *defaults* (any request
    may override them), ``workers`` sizes the persistent serving pool
    (``0`` answers in-process, still coalesced), ``window_ms`` /
    ``max_batch`` bound the coalescing (defaulting to the
    ``RKNNT_SERVER_WINDOW_MS`` / ``RKNNT_SERVER_MAX_BATCH`` knobs),
    ``deadline_ms`` is the per-batch budget and ``queue_limit`` bounds
    admitted-but-unanswered queries (``None`` defers to
    ``RKNNT_QUEUE_LIMIT``; ``0`` disables backpressure).

    ``record_oplog=True`` keeps an in-order operation log (applied
    updates, flushed queries with their ``seq``, watch registrations) —
    the differential tests replay it serially through a fresh processor
    and demand byte-identical answers.
    """

    def __init__(
        self,
        processor: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        k: int = 10,
        method: str = VORONOI,
        semantics: str = "exists",
        backend: str = BACKEND_AUTO,
        workers: int = 0,
        window_ms: Optional[float] = None,
        max_batch: Optional[int] = None,
        deadline_ms: Optional[float] = None,
        queue_limit: Optional[int] = None,
        start_method: Optional[str] = None,
        use_arena: Optional[bool] = None,
        record_oplog: bool = False,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be non-negative")
        self.processor = processor
        self.host = host
        self.port = port
        self.k = int(k)
        self.method = method
        self.semantics = semantics
        self.backend = backend
        self.workers = int(workers)
        self.window_ms = (
            server_window_ms() if window_ms is None else max(0.0, float(window_ms))
        )
        self.max_batch = (
            server_max_batch() if max_batch is None else max(1, int(max_batch))
        )
        self.deadline_ms = deadline_ms
        self.start_method = start_method
        self.use_arena = use_arena
        self._gate = resilience.AdmissionGate(queue_limit)
        self.record_oplog = record_oplog
        #: In-order operation log (see class docstring); only filled when
        #: ``record_oplog`` is set.
        self.oplog: List[Tuple[str, Dict[str, Any]]] = []
        #: Dataset version = number of updates applied since start; every
        #: query reply reports the version its batch ran against.
        self.version = 0

        self.stats: Dict[str, int] = {
            "connections": 0,
            "queries": 0,
            "batches": 0,
            "updates": 0,
            "events_pushed": 0,
            "watches": 0,
            "rejected_protocol": 0,
            "rejected_updates": 0,
            "rejected_saturated": 0,
            "deadline_misses": 0,
            "internal_errors": 0,
            "max_batch_coalesced": 0,
        }

        self._queue: "asyncio.Queue[Any]" = asyncio.Queue()
        self._seq = itertools.count()
        self._watch_ids = itertools.count()
        self._watches: Dict[int, Tuple[Any, _Connection]] = {}
        self._connections: set = set()
        self._reader_tasks: set = set()
        self._writer_tasks: set = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._pool_cm = None
        self._pool = None
        self._log_handler: Optional[logging.Handler] = None
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the socket, start the dispatcher (and serving pool)."""
        log_path = os.environ.get(LOG_FILE_ENV, "").strip()
        if log_path:
            self._log_handler = logging.FileHandler(log_path)
            self._log_handler.setFormatter(
                logging.Formatter("%(asctime)s %(levelname)s %(name)s %(message)s")
            )
            _LOGGER.addHandler(self._log_handler)
            _LOGGER.setLevel(logging.INFO)
        if self.workers:
            self._pool_cm = self.processor.serving_pool(
                workers=self.workers,
                start_method=self.start_method,
                use_arena=self.use_arena,
            )
            self._pool = self._pool_cm.__enter__()
        self._server = await asyncio.start_server(
            self._handle_client,
            self.host,
            self.port,
            limit=protocol.MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._dispatcher = asyncio.ensure_future(self._dispatch_loop())
        _LOGGER.info(
            "serving on %s:%s (workers=%d window_ms=%.3f max_batch=%d)",
            self.host,
            self.port,
            self.workers,
            self.window_ms,
            self.max_batch,
        )

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        await self._server.serve_forever()

    async def drain(self) -> None:
        """Block until every queued operation has been fully handled."""
        await self._queue.join()

    async def aclose(self) -> None:
        """Graceful shutdown: stop intake, finish queued work, clean up."""
        if self._closed:
            return
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._reader_tasks):
            task.cancel()
        if self._reader_tasks:
            await asyncio.gather(*self._reader_tasks, return_exceptions=True)
        await self._queue.join()
        await self._queue.put(_SHUTDOWN)
        if self._dispatcher is not None:
            await self._dispatcher
        for connection in list(self._connections):
            connection.close()
        if self._writer_tasks:
            await asyncio.gather(*self._writer_tasks, return_exceptions=True)
        if self._pool_cm is not None:
            self._pool_cm.__exit__(None, None, None)
            self._pool_cm = None
            self._pool = None
        _LOGGER.info("closed after %s", self.stats)
        if self._log_handler is not None:
            _LOGGER.removeHandler(self._log_handler)
            self._log_handler.close()
            self._log_handler = None

    # ------------------------------------------------------------------
    # Per-connection protocol loop
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = _Connection(writer)
        self._connections.add(connection)
        self.stats["connections"] += 1
        writer_task = asyncio.ensure_future(connection.writer_loop())
        self._writer_tasks.add(writer_task)
        writer_task.add_done_callback(self._writer_tasks.discard)
        reader_task = asyncio.current_task()
        if reader_task is not None:
            self._reader_tasks.add(reader_task)
        try:
            while True:
                try:
                    raw = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    # An over-long line poisons the framing; answer once
                    # and drop the connection (the only case that does).
                    self.stats["rejected_protocol"] += 1
                    connection.send(
                        protocol.error_reply(
                            None, ProtocolError("request line too long")
                        )
                    )
                    break
                except (ConnectionError, OSError):
                    break
                if not raw:
                    break
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                try:
                    request = protocol.decode_request(line)
                except ProtocolError as error:
                    self.stats["rejected_protocol"] += 1
                    connection.send(
                        protocol.error_reply(protocol.request_id_of(line), error)
                    )
                    continue
                reply = await self._handle_request(request, connection)
                if reply is not None:
                    connection.send(reply)
        except asyncio.CancelledError:
            pass  # server shutting down
        finally:
            if reader_task is not None:
                self._reader_tasks.discard(reader_task)
            self._connections.discard(connection)
            if connection.watches:
                self._queue.put_nowait(_ConnClosed(connection))
            connection.close()

    async def _handle_request(
        self, request: Request, connection: _Connection
    ) -> Optional[Dict[str, Any]]:
        """Answer one request: inline for ``ping``/``stats``, through the
        dispatcher queue (in arrival order) for everything else."""
        if request.op == "ping":
            return protocol.ok_reply(
                request.id, pong=True, protocol=protocol.PROTOCOL_VERSION
            )
        if request.op == "stats":
            return protocol.ok_reply(request.id, stats=self._stats_payload())
        if request.op == "query":
            try:
                self._gate.acquire(1, what="query")
            except PoolSaturated as error:
                self.stats["rejected_saturated"] += 1
                return protocol.error_reply(request.id, error)
            try:
                return await self._enqueue(request, connection)
            finally:
                self._gate.release(1)
        return await self._enqueue(request, connection)

    async def _enqueue(
        self, request: Request, connection: _Connection
    ) -> Dict[str, Any]:
        loop = asyncio.get_running_loop()
        item = _Pending(request, connection, loop.create_future())
        await self._queue.put(item)
        return await item.future

    # ------------------------------------------------------------------
    # Dispatcher: the only place state changes
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        while True:
            item = await self._queue.get()
            if item is _SHUTDOWN:
                self._queue.task_done()
                return
            taken: List[Any] = [item]
            stop = False
            try:
                if isinstance(item, _Pending) and item.request.op == "query":
                    batch, carry = await self._coalesce(item)
                    taken = list(batch)
                    if carry is not None:
                        taken.append(carry)
                    await self._flush(batch)
                    if carry is _SHUTDOWN:
                        stop = True
                    elif carry is not None:
                        self._apply(carry)
                else:
                    self._apply(item)
            except Exception as error:  # pragma: no cover - last-resort guard
                self.stats["internal_errors"] += 1
                _LOGGER.exception("dispatcher error")
                for pending in taken:
                    if isinstance(pending, _Pending) and not pending.future.done():
                        pending.future.set_result(
                            protocol.error_reply(pending.request.id, error)
                        )
            finally:
                for _ in taken:
                    self._queue.task_done()
            if stop:
                return

    async def _coalesce(
        self, first: _Pending
    ) -> Tuple[List[_Pending], Optional[Any]]:
        """Grow a batch from the arrival queue until the window closes.

        Returns the batch plus the first non-query item pulled while
        coalescing (``None`` when the window/size limit closed it) — that
        carry item is handled *after* the flush, preserving arrival order.
        """
        batch = [first]
        carry: Optional[Any] = None
        loop = asyncio.get_running_loop()
        expires = loop.time() + self.window_ms / 1000.0
        while carry is None and len(batch) < self.max_batch:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                timeout = expires - loop.time()
                if timeout <= 0:
                    break
                try:
                    item = await asyncio.wait_for(self._queue.get(), timeout)
                except asyncio.TimeoutError:
                    break
            if isinstance(item, _Pending) and item.request.op == "query":
                batch.append(item)
            else:
                carry = item
        return batch, carry

    async def _flush(self, batch: List[_Pending]) -> None:
        """Answer one coalesced batch through the engine.

        Queries are grouped by their full parameter signature; each group
        is one ``query_batch`` call (dispatched through the persistent
        pool when ``workers > 0``).  The blocking work runs on a
        :class:`BatchHandle` thread while the event loop keeps accepting
        connections, pings and future work — updates queue behind this
        flush, so the whole batch observes one index version.
        """
        self.stats["batches"] += 1
        self.stats["queries"] += len(batch)
        self.stats["max_batch_coalesced"] = max(
            self.stats["max_batch_coalesced"], len(batch)
        )
        version = self.version
        groups: Dict[Tuple, List[int]] = {}
        for index, item in enumerate(batch):
            item.seq = next(self._seq)
            request = item.request
            key = (
                request.k or self.k,
                request.method or self.method,
                request.semantics or self.semantics,
                request.backend or self.backend,
                request.exclude,
            )
            groups.setdefault(key, []).append(index)
            if self.record_oplog:
                self.oplog.append(
                    (
                        "query",
                        {
                            "seq": item.seq,
                            "points": list(request.points or ()),
                            "k": key[0],
                            "method": key[1],
                            "semantics": key[2],
                            "backend": key[3],
                            "exclude": list(key[4]),
                            "version": version,
                        },
                    )
                )

        processor = self.processor
        workers = self.workers
        deadline_ms = self.deadline_ms

        def runner() -> List[Any]:
            outcomes: List[Any] = [None] * len(batch)
            for key, indexes in groups.items():
                k, method, semantics, backend, exclude = key
                queries = [batch[index].request.points for index in indexes]
                try:
                    results = processor.query_batch(
                        queries,
                        k,
                        method=method,
                        semantics=semantics,
                        backend=backend,
                        exclude_route_ids=exclude or None,
                        workers=workers,
                        deadline_ms=deadline_ms,
                    )
                except Exception as exc:  # typed errors and bugs alike
                    for index in indexes:
                        outcomes[index] = exc
                    continue
                for index, result in zip(indexes, results):
                    outcomes[index] = result
            return outcomes

        handle = BatchHandle(runner, label=f"rknnt-flush-{self.stats['batches']}")
        outcomes = await asyncio.wrap_future(handle.future)
        for item, outcome in zip(batch, outcomes):
            if isinstance(outcome, BaseException):
                if isinstance(outcome, DeadlineExceeded):
                    self.stats["deadline_misses"] += 1
                elif not isinstance(outcome, RkNNTError):
                    self.stats["internal_errors"] += 1
                    _LOGGER.error("query failed: %r", outcome)
                reply = protocol.error_reply(item.request.id, outcome)
            else:
                reply = protocol.ok_reply(
                    item.request.id,
                    seq=item.seq,
                    version=version,
                    result=protocol.result_payload(outcome),
                )
            if not item.future.done():
                item.future.set_result(reply)

    # ------------------------------------------------------------------
    # Non-query operations (always between flushes)
    # ------------------------------------------------------------------
    def _apply(self, item: Any) -> None:
        if isinstance(item, _ConnClosed):
            for watch_id in list(item.connection.watches):
                registered = self._watches.pop(watch_id, None)
                if registered is not None:
                    self.processor.unwatch(registered[0])
            item.connection.watches.clear()
            return
        request: Request = item.request
        try:
            if request.op in ("insert", "delete"):
                reply = self._apply_update(item)
            elif request.op == "watch":
                reply = self._apply_watch(item)
            elif request.op == "unwatch":
                reply = self._apply_unwatch(item)
            else:  # pragma: no cover - decode_request prevents it
                raise ProtocolError(f"unroutable op {request.op!r}")
        except RkNNTError as error:
            if isinstance(error, UpdateStreamError):
                self.stats["rejected_updates"] += 1
            reply = protocol.error_reply(request.id, error)
        except Exception as error:  # pragma: no cover - last-resort guard
            self.stats["internal_errors"] += 1
            _LOGGER.exception("operation %s failed", request.op)
            reply = protocol.error_reply(request.id, error)
        if not item.future.done():
            item.future.set_result(reply)

    def _apply_update(self, item: _Pending) -> Dict[str, Any]:
        request = item.request
        transitions = self.processor.transitions
        if request.op == "insert":
            assert request.transition is not None
            transition_id, origin, destination = request.transition
            if transition_id in transitions:
                raise UpdateStreamError(
                    f"transition id {transition_id} already present"
                )
            self.processor.add_transition(
                Transition(transition_id, origin, destination)
            )
            if self.record_oplog:
                self.oplog.append(
                    (
                        "insert",
                        {
                            "transition_id": transition_id,
                            "origin": list(origin),
                            "destination": list(destination),
                        },
                    )
                )
        else:
            assert request.transition_id is not None
            if request.transition_id not in transitions:
                raise UpdateStreamError(
                    f"transition id {request.transition_id} not in dataset"
                )
            self.processor.remove_transition(request.transition_id)
            if self.record_oplog:
                self.oplog.append(
                    ("delete", {"transition_id": request.transition_id})
                )
        self.version += 1
        self.stats["updates"] += 1
        self._push_deltas()
        return protocol.ok_reply(
            request.id, seq=next(self._seq), version=self.version
        )

    def _push_deltas(self) -> None:
        """Forward standing-query deltas born from the last update."""
        for watch_id, (subscription, connection) in list(self._watches.items()):
            for delta in subscription.poll():
                if not delta:
                    continue
                connection.send(protocol.delta_event(watch_id, delta))
                self.stats["events_pushed"] += 1

    def _apply_watch(self, item: _Pending) -> Dict[str, Any]:
        request = item.request
        subscription = self.processor.watch(
            request.points,
            request.k or self.k,
            method=request.method or self.method,
            semantics=request.semantics or self.semantics,
            exclude_route_ids=request.exclude or None,
            # Standing queries default to the scalar backend: delta
            # maintenance is per-endpoint work that never amortises
            # array packing.
            backend=request.backend or BACKEND_PYTHON,
        )
        watch_id = next(self._watch_ids)
        self._watches[watch_id] = (subscription, item.connection)
        item.connection.watches[watch_id] = subscription
        self.stats["watches"] += 1
        if self.record_oplog:
            self.oplog.append(
                (
                    "watch",
                    {
                        "watch": watch_id,
                        "points": list(request.points or ()),
                        "k": request.k or self.k,
                        "method": request.method or self.method,
                        "semantics": request.semantics or self.semantics,
                        "version": self.version,
                    },
                )
            )
        return protocol.ok_reply(
            request.id,
            watch=watch_id,
            version=self.version,
            result=protocol.result_payload(subscription.result()),
        )

    def _apply_unwatch(self, item: _Pending) -> Dict[str, Any]:
        request = item.request
        watch_id = request.watch_id
        registered = self._watches.get(watch_id)
        if registered is None or registered[1] is not item.connection:
            # Refusing cross-connection unwatch is part of the isolation
            # contract: a client can only ever touch its own watches.
            raise ProtocolError(f"unknown watch id {watch_id}", watch=watch_id)
        subscription, _ = self._watches.pop(watch_id)
        item.connection.watches.pop(watch_id, None)
        self.processor.unwatch(subscription)
        if self.record_oplog:
            self.oplog.append(("unwatch", {"watch": watch_id}))
        return protocol.ok_reply(request.id, watch=watch_id)

    def _stats_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = dict(self.stats)
        payload.update(
            {
                "protocol": protocol.PROTOCOL_VERSION,
                "version": self.version,
                "workers": self.workers,
                "window_ms": self.window_ms,
                "max_batch": self.max_batch,
                "open_connections": len(self._connections),
                "open_watches": len(self._watches),
                "degraded": bool(self._pool is not None and self._pool.degraded),
                "pools_spawned": (
                    self._pool.pools_spawned if self._pool is not None else 0
                ),
                "store_seeds": (
                    self._pool.store_seeds if self._pool is not None else 0
                ),
                "store_fallbacks": (
                    self._pool.store_fallbacks if self._pool is not None else 0
                ),
                "last_seed_nbytes": (
                    self._pool.last_seed_nbytes if self._pool is not None else 0
                ),
            }
        )
        # Work-reuse counters live on the execution context; shard workers
        # ship their deltas home after every pool batch, so these reflect
        # the whole serving history regardless of where queries ran.
        context = self.processor.engine_context
        payload.update(
            {
                "subquery_hits": context.subquery_hits,
                "subquery_misses": context.subquery_misses,
                "locality_clusters": context.locality_clusters,
                "locality_seeded": context.locality_seeded,
                "locality_retested": context.locality_retested,
                "shard_fallbacks": context.shard_fallbacks,
            }
        )
        return payload


class ServerThread:
    """Run an :class:`RkNNTServer` on a private event-loop thread.

    The test suite and ``bench_server.py`` need a live server inside a
    synchronous process; this context manager owns the loop thread and
    guarantees a graceful ``aclose`` on exit::

        with ServerThread(processor, workers=2) as handle:
            client = LineClient(handle.host, handle.port)
    """

    def __init__(self, processor: Any, **kwargs: Any) -> None:
        self._kwargs = kwargs
        self._processor = processor
        self.server: Optional[RkNNTServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def host(self) -> str:
        assert self.server is not None
        return self.server.host

    @property
    def port(self) -> int:
        assert self.server is not None
        return self.server.port

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        server = RkNNTServer(self._processor, **self._kwargs)
        try:
            loop.run_until_complete(server.start())
        except BaseException as error:  # startup failed: surface in __enter__
            self._startup_error = error
            self._started.set()
            loop.close()
            return
        self.server = server
        self._started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(server.aclose())
            loop.close()

    def __enter__(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="rknnt-server", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=60)
        if self._startup_error is not None:
            raise self._startup_error
        assert self.server is not None, "server failed to start in time"
        return self

    def __exit__(self, *exc_info: Any) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=60)
