"""Continuous RkNNT: delta-maintained standing queries over streaming DT.

The paper's headline applications only pay off when the transition set
churns continuously — new ride requests arrive, old ones expire — and a
route operator wants the *current* RkNNT answer of a (planned) route at all
times.  Re-running the full filter → prune → verify pipeline after every
update throws away almost all of the work: a single transition insert or
delete can change the answer by at most that one transition, and the
filtering structures built for the standing query remain valid until the
*route* set changes.

This module exploits exactly that:

* :class:`ContinuousRkNNT` — the per-context subscription manager.  It
  listens to the transition index's typed mutation stream
  (:class:`~repro.index.transition_index.TransitionDelta`) and forwards
  each event to every registered subscription.
* :class:`Subscription` — one standing query.  It keeps the query's filter
  structures (one retained :class:`~repro.engine.executor.QueryExecutor`
  per sub-query, so divide & conquer keeps one per query point), the
  verified confirmed-endpoint map, and per-endpoint kNN count margins.

Delta maintenance per event:

* **insert** — each endpoint of the new transition is tested against the
  subscription's existing filter half-spaces in O(|filter set|) (the same
  ``is_filtered`` predicate the pruning phase used).  A filtered endpoint
  is provably dominated by ≥ k routes and rejected with no further work;
  only *borderline* endpoints (not filtered) pay one exact verification
  (:func:`~repro.core.knn.count_routes_within_sq`, early-exit at ``k``).
* **delete** — the transition is dropped from the confirmed map in O(1);
  other transitions cannot be affected (their confirmation depends only on
  the routes).
* **route mutations** — invalidate the filter structures.  Staleness is
  detected through the existing index generation counters
  (``RouteIndex.version``) and triggers a scoped re-filter: the
  subscription rebuilds its executors and emits the diff against its
  previously materialized result as one ``"rebuild"`` delta.

After any interleaving of updates a subscription's materialized result is
element-wise identical to a fresh :meth:`~repro.core.rknnt.RkNNTProcessor
.query` (and hence to brute force) — ``tests/test_continuous.py`` asserts
this differentially for all three methods, both semantics and both
backends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.core.knn import closer_route_count
from repro.core.result import RkNNTResult
from repro.core.semantics import FORALL, Semantics
from repro.core.stats import QueryStatistics
from repro.engine.context import ExecutionContext
from repro.engine.executor import QueryExecutor
from repro.engine.locality import (
    centroid,
    dataset_cell_size,
    default_cell_size,
    locality_cell_override,
)
from repro.engine.plan import LOCALITY_ON, QueryPlan
from repro.engine.resilience import RkNNTError
from repro.geometry.bbox import BoundingBox
from repro.index.transition_index import (
    DELTA_INSERT,
    DESTINATION,
    ORIGIN,
    TransitionDelta,
)
from repro.model.transition import Transition

QueryPoints = Sequence[Sequence[float]]

#: Causes carried by :class:`ResultDelta`.
CAUSE_INSERT = "insert"
CAUSE_DELETE = "delete"
CAUSE_REBUILD = "rebuild"


@dataclass(frozen=True)
class ResultDelta:
    """An incremental change of one subscription's standing result.

    Attributes
    ----------
    added:
        Transition ids that entered the result.
    removed:
        Transition ids that left the result.
    cause:
        ``"insert"`` / ``"delete"`` for a single-transition delta,
        ``"rebuild"`` when a route mutation forced a scoped re-filter (the
        delta then carries the *diff* between the old and new materialized
        results, which may span many transitions).
    version:
        The transition index version this delta brought the subscription up
        to date with.
    """

    added: FrozenSet[int]
    removed: FrozenSet[int]
    cause: str
    version: int

    def __bool__(self) -> bool:
        return bool(self.added or self.removed)


@dataclass
class DeltaStatistics:
    """Instrumentation of one subscription's delta maintenance.

    Attributes
    ----------
    inserts_seen / deletes_seen:
        Transition-level events observed.
    endpoints_filtered:
        Inserted endpoints rejected purely by the O(filter) half-space
        test — no exact verification was needed for them.
    endpoints_verified:
        Borderline inserted endpoints that paid one exact kNN-count
        verification.
    rebuilds:
        Scoped re-filters triggered by route-set staleness (or a detected
        gap in the delta stream).
    deltas_emitted:
        Non-empty :class:`ResultDelta` events produced.
    seeded_filter_points:
        Filter facts inherited from a nearby donor subscription at watch
        time (the continuous tier of the query-locality engine, see
        :mod:`repro.engine.locality`); ``0`` unless ``RKNNT_LOCALITY`` was
        on and a donor was found.
    """

    inserts_seen: int = 0
    deletes_seen: int = 0
    endpoints_filtered: int = 0
    endpoints_verified: int = 0
    rebuilds: int = 0
    deltas_emitted: int = 0
    seeded_filter_points: int = 0


class Subscription:
    """One standing RkNNT query, maintained incrementally.

    Created through :meth:`ContinuousRkNNT.watch` (or, at the top level,
    :meth:`repro.core.rknnt.RkNNTProcessor.watch`) — not directly.

    Parameters
    ----------
    context:
        The shared execution context of the owning processor.
    query_points:
        The standing query ``Q`` as normalised point tuples.
    k:
        The ``k`` of the reverse k nearest neighbour query.
    plan:
        Resolved :class:`~repro.engine.plan.QueryPlan` (method, backend,
        decomposition).
    semantics:
        ``EXISTS`` or ``FORALL`` — the aggregation under which membership
        (and hence the emitted deltas) is defined.
    exclude_route_ids:
        Routes that never count against candidates for this subscription.
    callback:
        Optional ``callback(delta)`` invoked synchronously for every
        non-empty :class:`ResultDelta`; deltas are queued for :meth:`poll`
        either way.
    seed_filter_points:
        Filter facts ``((x, y), crossover routes)`` donated by a nearby
        subscription (the continuous tier of the query-locality engine).
        They pre-populate each executor's filter set before the *initial*
        build only — facts are route-derived, so a later route-churn
        rebuild must not reuse them — letting the RR-tree traversal prune
        earlier.  Facts are query-independent, so the standing result is
        identical with or without a seed.
    """

    def __init__(
        self,
        context: ExecutionContext,
        query_points: QueryPoints,
        k: int,
        plan: QueryPlan,
        semantics: Semantics,
        exclude_route_ids: Optional[Iterable[int]] = None,
        callback: Optional[Callable[[ResultDelta], None]] = None,
        seed_filter_points: Optional[
            List[Tuple[Tuple[float, float], FrozenSet[int]]]
        ] = None,
    ):
        if k <= 0:
            raise ValueError("k must be positive")
        self.context = context
        self.query_points: List[Tuple[float, float]] = [
            (float(p[0]), float(p[1])) for p in query_points
        ]
        if not self.query_points:
            raise ValueError("query must contain at least one point")
        self.k = k
        self.plan = plan.resolved()
        self.semantics = semantics
        self.excluded: FrozenSet[int] = frozenset(exclude_route_ids or ())
        self.callback = callback
        self.delta_stats = DeltaStatistics()
        #: Cumulative pipeline statistics of the initial build and every
        #: subsequent scoped re-filter.
        self.query_stats = QueryStatistics()
        self.active = True
        self._pending: List[ResultDelta] = []
        #: Retained (sub-query points, executor) pairs; divide & conquer
        #: keeps one executor (and hence one filter set) per query point.
        self._executors: List[Tuple[List[Tuple[float, float]], QueryExecutor]] = []
        self._confirmed: Dict[int, Set[str]] = {}
        self._margins: Dict[Tuple[int, str], int] = {}
        self._result_ids: Set[int] = set()
        self._route_version = -1
        self._transition_version = -1
        self._seed_filter_points = list(seed_filter_points or ())
        self._rebuild()

    # ------------------------------------------------------------------
    # Build / rebuild (scoped re-filter)
    # ------------------------------------------------------------------
    def _sub_queries(self) -> List[List[Tuple[float, float]]]:
        if self.plan.decompose:
            return [[point] for point in self.query_points]
        return [list(self.query_points)]

    def _rebuild(self) -> None:
        """Run the full pipeline once and retain the filter structures."""
        self._executors = []
        confirmed: Dict[int, Set[str]] = {}
        for sub in self._sub_queries():
            executor = QueryExecutor(
                self.context,
                self.k,
                use_voronoi=self.plan.use_voronoi,
                exclude_route_ids=self.excluded,
                backend=self.plan.backend,
                filter_traversal=self.plan.filter_traversal,
            )
            for point, crossover in self._seed_filter_points:
                executor.filter_set.add(point, crossover)
            for transition_id, endpoints in executor.run(sub).items():
                confirmed.setdefault(transition_id, set()).update(endpoints)
            self.query_stats.merge(executor.stats)
            self._executors.append((sub, executor))
        if self._seed_filter_points:
            self.delta_stats.seeded_filter_points += len(self._seed_filter_points)
            # Donated facts are route-derived: valid for this build (the
            # donor was checked against the current route version), stale
            # for any later route-churn rebuild.
            self._seed_filter_points = []
        self._finish_rebuild(confirmed)

    def _finish_rebuild(self, confirmed: Dict[int, Set[str]]) -> None:
        """Install a rebuilt confirmed map and re-derive the dependent state."""
        self._confirmed = confirmed
        self._margins = {}
        self._result_ids = {
            transition_id
            for transition_id, endpoints in confirmed.items()
            if self._is_member(endpoints)
        }
        self._route_version = self.context.route_index.version
        self._transition_version = self.context.transition_index.version

    def is_stale(self) -> bool:
        """True when the indexes moved since the last (re)build — the next
        access (or :meth:`refresh`) will trigger a scoped re-filter."""
        return self.active and (
            self._route_version != self.context.route_index.version
            or self._transition_version != self.context.transition_index.version
        )

    def rebuild_job(self):
        """The pool job describing this subscription's re-filter.

        Shape consumed by :meth:`repro.engine.parallel.ShardedExecutor
        .run_standing`: ``(sub-queries, k, plan, excluded route ids)``.
        """
        return (self._sub_queries(), self.k, self.plan, self.excluded)

    def install_rebuild(self, parts) -> Optional[ResultDelta]:
        """Install a pool-computed re-filter (see :meth:`rebuild_job`).

        ``parts`` holds one ``(confirmed map, stats, filter set)`` tuple per
        sub-query, computed by a pool worker against the same index state —
        the retained executors are reconstructed around the shipped filter
        sets, so the O(filter) insert test behaves exactly as after a local
        :meth:`refresh`.  Emits the same ``"rebuild"`` delta a local
        re-filter would.
        """
        if not self.active:
            return None
        old_ids = set(self._result_ids)
        self._executors = []
        confirmed: Dict[int, Set[str]] = {}
        for sub, (sub_confirmed, stats, filter_set) in zip(
            self._sub_queries(), parts
        ):
            executor = QueryExecutor(
                self.context,
                self.k,
                use_voronoi=self.plan.use_voronoi,
                exclude_route_ids=self.excluded,
                backend=self.plan.backend,
                filter_traversal=self.plan.filter_traversal,
            )
            executor.filter_set = filter_set
            for transition_id, endpoints in sub_confirmed.items():
                confirmed.setdefault(transition_id, set()).update(endpoints)
            self.query_stats.merge(stats)
            self._executors.append((sub, executor))
        self._finish_rebuild(confirmed)
        self.delta_stats.rebuilds += 1
        return self._emit(
            added=self._result_ids - old_ids,
            removed=old_ids - self._result_ids,
            cause=CAUSE_REBUILD,
        )

    def refresh(self) -> Optional[ResultDelta]:
        """Re-filter if the indexes moved under the subscription.

        Called automatically before every delta application and result
        access; callers only need it to force an eager rebuild.  Returns the
        emitted ``"rebuild"`` delta when the standing result changed, else
        ``None`` (including when nothing was stale).  A cancelled
        subscription is frozen: it neither rebuilds nor emits, its
        materialized result stays whatever it was at cancellation time.
        """
        if not self.active or (
            self._route_version == self.context.route_index.version
            and self._transition_version == self.context.transition_index.version
        ):
            return None
        old_ids = set(self._result_ids)
        self._rebuild()
        self.delta_stats.rebuilds += 1
        return self._emit(
            added=self._result_ids - old_ids,
            removed=old_ids - self._result_ids,
            cause=CAUSE_REBUILD,
        )

    # ------------------------------------------------------------------
    # Delta application
    # ------------------------------------------------------------------
    def apply(self, delta: TransitionDelta) -> Optional[ResultDelta]:
        """Fold one transition mutation into the standing result.

        Returns the emitted :class:`ResultDelta` when the result changed
        (possibly a ``"rebuild"`` delta when route staleness or a stream
        gap forced a re-filter), else ``None``.
        """
        if not self.active:
            return None
        if (
            self._route_version != self.context.route_index.version
            or delta.version != self._transition_version + 1
        ):
            # Route mutations invalidate the filter half-spaces; a version
            # gap means events were missed.  Either way the scoped
            # re-filter already observes the post-mutation transition
            # index, so this delta is subsumed by the rebuild.
            return self.refresh()
        # Advance first: _emit stamps result deltas with the version they
        # bring the subscription up to date with, i.e. this mutation's.
        self._transition_version = delta.version
        if delta.kind == DELTA_INSERT:
            return self._apply_insert(delta.transition)
        return self._apply_delete(delta.transition)

    def _apply_insert(self, transition: Transition) -> Optional[ResultDelta]:
        self.delta_stats.inserts_seen += 1
        transition_id = transition.transition_id
        # Defensive: a re-used id replaces any previous confirmation state
        # (the index accepts duplicate ids even though the datasets reject
        # them), so prior membership may be revoked by this insert.
        was_member = transition_id in self._result_ids
        self._confirmed.pop(transition_id, None)
        self._forget_margins(transition_id)
        endpoints: Set[str] = set()
        for label, point in (
            (ORIGIN, transition.origin),
            (DESTINATION, transition.destination),
        ):
            closer = self._verify_endpoint(point)
            if closer is None:
                continue
            if closer < self.k:
                endpoints.add(label)
                self._margins[(transition_id, label)] = self.k - closer
        if endpoints:
            self._confirmed[transition_id] = endpoints
        is_member = bool(endpoints) and self._is_member(endpoints)
        if is_member and not was_member:
            self._result_ids.add(transition_id)
            return self._emit(added={transition_id}, cause=CAUSE_INSERT)
        if was_member and not is_member:
            self._result_ids.discard(transition_id)
            return self._emit(removed={transition_id}, cause=CAUSE_INSERT)
        return None

    def _verify_endpoint(self, point) -> Optional[int]:
        """Closer-route count of one inserted endpoint, or ``None`` if the
        O(filter) half-space test already proves ≥ k routes dominate it.

        An endpoint is a member for the whole query iff it is a member for
        at least one sub-query (Lemma 3), so it can be rejected outright
        only when *every* retained filter set dominates it.
        """
        box = BoundingBox(point[0], point[1], point[0], point[1])
        if all(
            executor.is_filtered(box, sub) for sub, executor in self._executors
        ):
            self.delta_stats.endpoints_filtered += 1
            return None
        self.delta_stats.endpoints_verified += 1
        return closer_route_count(
            self.context.route_index,
            point,
            self.query_points,
            self.k,
            exclude_route_ids=set(self.excluded),
            backend=self.plan.backend,
        )

    def _apply_delete(self, transition: Transition) -> Optional[ResultDelta]:
        self.delta_stats.deletes_seen += 1
        transition_id = transition.transition_id
        self._confirmed.pop(transition_id, None)
        self._forget_margins(transition_id)
        if transition_id in self._result_ids:
            self._result_ids.discard(transition_id)
            return self._emit(removed={transition_id}, cause=CAUSE_DELETE)
        return None

    def _forget_margins(self, transition_id: int) -> None:
        self._margins.pop((transition_id, ORIGIN), None)
        self._margins.pop((transition_id, DESTINATION), None)

    # ------------------------------------------------------------------
    # Membership / emission
    # ------------------------------------------------------------------
    def _is_member(self, endpoints: Set[str]) -> bool:
        if self.semantics is FORALL:
            return len(endpoints) == 2
        return bool(endpoints)

    def _emit(
        self,
        added: Iterable[int] = (),
        removed: Iterable[int] = (),
        cause: str = CAUSE_REBUILD,
    ) -> Optional[ResultDelta]:
        delta = ResultDelta(
            added=frozenset(added),
            removed=frozenset(removed),
            cause=cause,
            version=self._transition_version,
        )
        if not delta:
            return None
        self.delta_stats.deltas_emitted += 1
        self._pending.append(delta)
        if self.callback is not None:
            self.callback(delta)
        return delta

    # ------------------------------------------------------------------
    # Reading the standing result
    # ------------------------------------------------------------------
    def poll(self) -> List[ResultDelta]:
        """Drain and return the queued result deltas (oldest first)."""
        self.refresh()
        drained = self._pending
        self._pending = []
        return drained

    @property
    def transition_ids(self) -> FrozenSet[int]:
        """Current result membership under the subscription's semantics."""
        self.refresh()
        return frozenset(self._result_ids)

    def result(self) -> RkNNTResult:
        """Materialize the standing result as a regular query result.

        Element-wise identical to a fresh
        :meth:`~repro.core.rknnt.RkNNTProcessor.query` with the same
        arguments; ``stats`` reports the cumulative pipeline work of the
        initial build plus every scoped re-filter (delta maintenance itself
        is accounted in :attr:`delta_stats`).
        """
        self.refresh()
        return RkNNTResult.from_confirmed(
            {tid: set(eps) for tid, eps in self._confirmed.items()},
            self.semantics,
            self.k,
            self.query_stats,
        )

    def margin(self, transition_id: int, endpoint: str = ORIGIN) -> int:
        """How safely the endpoint holds its membership: ``k - closer``.

        A confirmed endpoint with margin ``m`` tolerates ``m - 1`` more
        strictly-closer routes before eviction; ``0`` means the endpoint is
        not currently confirmed.  Computed on demand (and cached until the
        transition churns) for endpoints confirmed by the initial build.
        """
        self.refresh()
        endpoints = self._confirmed.get(transition_id)
        if not endpoints or endpoint not in endpoints:
            return 0
        key = (transition_id, endpoint)
        if key not in self._margins:
            transition = self.context.transition_index.transition(transition_id)
            point = (
                transition.origin if endpoint == ORIGIN else transition.destination
            )
            closer = closer_route_count(
                self.context.route_index,
                point,
                self.query_points,
                self.k,
                exclude_route_ids=set(self.excluded),
                backend=self.plan.backend,
            )
            self._margins[key] = self.k - closer
        return self._margins[key]

    def cancel(self) -> None:
        """Stop maintaining this subscription (idempotent)."""
        self.active = False

    def __repr__(self) -> str:
        return (
            f"Subscription(|Q|={len(self.query_points)}, k={self.k}, "
            f"method={self.plan.method!r}, semantics={self.semantics}, "
            f"results={len(self._result_ids)}, active={self.active})"
        )


class ContinuousRkNNT:
    """Per-context subscription manager for continuous RkNNT queries.

    One manager per :class:`~repro.engine.context.ExecutionContext`; it
    registers a single listener on the context's transition index and fans
    every :class:`~repro.index.transition_index.TransitionDelta` out to the
    active subscriptions.  With no subscriptions registered the listener is
    a no-op, so an attached manager adds nothing to the update path.
    """

    def __init__(self, context: ExecutionContext):
        self.context = context
        self._subscriptions: List[Subscription] = []
        self._attached = False

    # ------------------------------------------------------------------
    # Subscription lifecycle
    # ------------------------------------------------------------------
    def watch(
        self,
        query_points: QueryPoints,
        k: int,
        plan: QueryPlan,
        semantics: Union[Semantics, str],
        exclude_route_ids: Optional[Iterable[int]] = None,
        callback: Optional[Callable[[ResultDelta], None]] = None,
    ) -> Subscription:
        """Register a standing query and return its live subscription.

        With the query-locality engine on (``RKNNT_LOCALITY=1`` or
        ``plan.locality="on"``), the new standing query *snaps* to the
        nearest active subscription in its grid cell with the same excluded
        routes and inherits its retained filter facts as a starting bound —
        the continuous tier of :mod:`repro.engine.locality`.  The standing
        result is identical with or without a donor.
        """
        seed = None
        if plan.resolved().locality == LOCALITY_ON:
            seed = self._donor_filter_points(
                query_points, frozenset(exclude_route_ids or ())
            )
        subscription = Subscription(
            self.context,
            query_points,
            k,
            plan,
            Semantics.coerce(semantics),
            exclude_route_ids=exclude_route_ids,
            callback=callback,
            seed_filter_points=seed,
        )
        self._subscriptions.append(subscription)
        self._attach()
        return subscription

    def _donor_filter_points(
        self, query_points: QueryPoints, excluded: FrozenSet[int]
    ) -> Optional[List[Tuple[Tuple[float, float], FrozenSet[int]]]]:
        """Filter facts of the nearest eligible donor subscription, or None.

        Eligible donors are active, share the exact excluded-route set (a
        fact's crossover set already had the donor's exclusions subtracted),
        and are built against the *current* route index version — facts are
        route-derived, so a stale donor must not seed anyone.  The nearest
        donor centroid within one cell distance wins.
        """
        current_version = self.context.route_index.version
        donors = [
            subscription
            for subscription in self._subscriptions
            if subscription.active
            and subscription.excluded == excluded
            and subscription._route_version == current_version
        ]
        if not donors:
            return None
        qx, qy = centroid([(float(p[0]), float(p[1])) for p in query_points])
        cell = locality_cell_override()
        if cell is None:
            # A handful of standing queries is a terrible extent estimate
            # (two neighbours => extent ~ their separation, cell ~ 0), so
            # prefer the dataset extent from the RR-tree root.
            cell = dataset_cell_size(self.context)
        if cell is None:
            cell = default_cell_size(
                [centroid(donor.query_points) for donor in donors] + [(qx, qy)]
            )
        best: Optional[Subscription] = None
        best_d = cell * cell
        for donor in donors:
            cx, cy = centroid(donor.query_points)
            dx = cx - qx
            dy = cy - qy
            d = dx * dx + dy * dy
            if d <= best_d and (best is None or d < best_d):
                best = donor
                best_d = d
        if best is None:
            return None
        facts: List[Tuple[Tuple[float, float], FrozenSet[int]]] = []
        seen = set()
        for _, executor in best._executors:
            for point, crossover in executor.filter_set.points_by_crossover():
                key = (point, crossover)
                if key not in seen:
                    seen.add(key)
                    facts.append((point, crossover))
        return facts or None

    def unwatch(self, subscription: Subscription) -> None:
        """Cancel a subscription and stop delivering deltas to it."""
        subscription.cancel()
        try:
            self._subscriptions.remove(subscription)
        except ValueError:
            pass
        if not self._subscriptions:
            self._detach()

    def close(self) -> None:
        """Cancel every subscription and detach from the index."""
        for subscription in list(self._subscriptions):
            self.unwatch(subscription)

    # ------------------------------------------------------------------
    # Bulk re-validation (serving pool integration)
    # ------------------------------------------------------------------
    def refresh_all(self, pool=None) -> List[ResultDelta]:
        """Re-filter every stale subscription now, optionally via a pool.

        With ``pool`` (a live :class:`~repro.engine.parallel
        .ShardedExecutor`, normally the processor's serving pool) the
        stale subscriptions' re-filters run sharded across the pool's
        workers — after a route-churn burst this re-validates a whole
        standing-query population in parallel — and the shipped filter
        structures are re-installed per subscription.  Without a pool each
        stale subscription refreshes serially, exactly as its next lazy
        access would.  Returns the non-empty ``"rebuild"`` deltas emitted.

        A pool that fails outright (a typed
        :class:`~repro.engine.resilience.RkNNTError`, e.g. its reseed
        budget is already spent and a deadline cut the degraded path short)
        is abandoned for this refresh: the stale subscriptions fall back to
        the serial re-filter, which computes the identical deltas —
        standing results never depend on the pool's health.
        """
        stale = [
            subscription
            for subscription in self._subscriptions
            if subscription.is_stale()
        ]
        deltas: List[ResultDelta] = []
        rebuilt = None
        if pool is not None and stale:
            jobs = [subscription.rebuild_job() for subscription in stale]
            try:
                rebuilt = pool.run_standing(jobs)
            except RkNNTError:
                rebuilt = None
        if rebuilt is not None:
            for subscription, parts in zip(stale, rebuilt):
                delta = subscription.install_rebuild(parts)
                if delta is not None:
                    deltas.append(delta)
        else:
            for subscription in stale:
                delta = subscription.refresh()
                if delta is not None:
                    deltas.append(delta)
        return deltas

    def __len__(self) -> int:
        return len(self._subscriptions)

    # ------------------------------------------------------------------
    # Delta fan-out
    # ------------------------------------------------------------------
    def _attach(self) -> None:
        if not self._attached:
            self.context.transition_index.add_listener(self._on_delta)
            self._attached = True

    def _detach(self) -> None:
        if self._attached:
            self.context.transition_index.remove_listener(self._on_delta)
            self._attached = False

    def _on_delta(self, delta: TransitionDelta) -> None:
        for subscription in list(self._subscriptions):
            subscription.apply(delta)

    def __repr__(self) -> str:
        return (
            f"ContinuousRkNNT(subscriptions={len(self._subscriptions)}, "
            f"attached={self._attached})"
        )
