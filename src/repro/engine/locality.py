"""Query-locality engine: shared filter reuse across nearby batch queries.

The staged executor derives a fresh filtering set per query, yet batch
workloads issued by real clients are spatially *clustered* — bus-bunching
analyses probe the same corridor, per-vertex planning sweeps walk adjacent
network vertices — so nearby queries redo nearly identical filter work.
This module exploits that redundancy without changing a single answer:

1. **Cluster** — a seeded grid snap groups the batch's queries by the cell
   of their centroid (and by their excluded-route set: only identically
   excluded queries may share filter facts).
2. **Pilot** — one member per cluster (the one nearest the cluster's mean
   centroid) runs through the completely normal staged executor.  Its
   result, statistics and counters are bit-for-bit what an unshared run
   would produce.
3. **Seed + margin prune** — every neighbour *shares the pilot's retained
   filter set*.  A filter fact is query-independent — it says "route point
   ``r`` lies on routes ``C(r)``" — so re-deriving it per neighbour is pure
   waste; only the *filtering spaces* ``H_{r:Q}`` depend on the query, and
   the executor recomputes those against each neighbour's actual points.
   One TR-tree traversal per cluster prunes with the δ-margin predicate
   (:func:`repro.geometry.halfspace.margin_slack_bbox`, δ = the largest
   directed Hausdorff distance from any member to the pilot): a box it
   discards is provably filtered for **every** member.  Each surviving
   candidate carries its *prune threshold* — the largest δ at which the
   margin accounting still reaches ``k`` routes — so a member whose own
   (usually much smaller) distance stays below the threshold drops the
   candidate by one float comparison instead of an exact filter test.
4. **Re-test + verify** — each neighbour re-tests only the truly
   *borderline* shared candidates (threshold not above its own δ) with its
   exact filtering predicate and verifies the keepers exactly, so the
   confirmed endpoints — and the ``confirmed_points`` counter, since a
   truly confirmed endpoint is verified exactly once on either path —
   equal the unshared run's.

Soundness of the margin in one line: for any member query ``Q′`` with
directed Hausdorff distance ``≤ δ`` to the pilot ``Q``, and any point ``p``
of a box ``b``, ``dist(p, q′) ≥ dist(p, q) − δ ≥ MinDist(b, Q) − δ >
MaxDist(b, r) ≥ dist(p, r)`` — so every box discarded by the margin
predicate lies inside ``H_{r:Q′}`` too.  δ is additionally inflated by one
part in 10⁹ before use, which dwarfs the accumulated float64 rounding error
of the distance expressions while only making pruning *more* conservative.

The same machinery unifies the repo's two other reuse paths:

* **sub-query memo tier** — under divide & conquer the pre-pass resolves
  the batch's not-yet-memoised single-point sub-queries cluster by cluster
  (pilot + margin + re-test) and stores the answers, turning the main
  loop's lookups into exact hits: locality is the near-hit tier below the
  :class:`~repro.engine.context.ExecutionContext` cache's exact-hit tier.
* **continuous layer** — a new standing query snaps to the nearest active
  subscription in its cell and seeds its executors' filter sets from the
  donor's retained facts (see :mod:`repro.engine.continuous`).

Everything is gated behind ``RKNNT_LOCALITY`` (cell size override:
``RKNNT_LOCALITY_CELL``); ``tests/test_locality.py`` asserts shared ≡
unshared per method × semantics × backend.
"""

from __future__ import annotations

import math
import os
import time
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.result import RkNNTResult
from repro.core.semantics import Semantics
from repro.engine.context import ExecutionContext
from repro.engine.executor import Candidate, QueryExecutor, execute
from repro.engine.plan import LOCALITY_ON, QueryPlan
from repro.engine.resilience import Deadline
from repro.geometry import kernels
from repro.geometry.bbox import BoundingBox
from repro.geometry.kernels import BACKEND_NUMPY
from repro.index.rtree import RTreeEntry, RTreeNode

#: One batch job: (query points, excluded route ids).  The same shape the
#: parallel layer ships to shard workers.
Job = Tuple[Sequence[Sequence[float]], FrozenSet[int]]

#: Override the clustering cell size (in coordinate units).  Invalid or
#: non-positive values fall back to the workload-derived default — a
#: mistyped tuning knob must never change answers or crash a query.
LOCALITY_CELL_ENV = "RKNNT_LOCALITY_CELL"

#: Default cell size = workload extent divided by this (so a uniform
#: workload forms ~GRID_DIVISIONS² cells and a clustered one collapses
#: each hotspot into few cells).
GRID_DIVISIONS = 16

#: Shared candidates are re-tested against each member's exact predicate in
#: blocks of this many boxes, bounding the half-plane tensor's size.
RETEST_CHUNK = 512


def locality_cell_override() -> Optional[float]:
    """The ``RKNNT_LOCALITY_CELL`` override as a positive float, or None."""
    raw = os.environ.get(LOCALITY_CELL_ENV, "").strip()
    if raw:
        try:
            value = float(raw)
        except ValueError:
            return None
        if value > 0 and math.isfinite(value):
            return value
    return None


def centroid(points: Sequence[Sequence[float]]) -> Tuple[float, float]:
    """Mean point of a query's points (the grid-snap key coordinate)."""
    xs = sum(float(p[0]) for p in points)
    ys = sum(float(p[1]) for p in points)
    return xs / len(points), ys / len(points)


def default_cell_size(centroids: Sequence[Tuple[float, float]]) -> float:
    """Workload-derived cell size: the centroid extent over GRID_DIVISIONS."""
    if not centroids:
        return 1.0
    xs = [c[0] for c in centroids]
    ys = [c[1] for c in centroids]
    extent = max(max(xs) - min(xs), max(ys) - min(ys))
    if extent <= 0.0:
        return 1.0
    return extent / GRID_DIVISIONS


def dataset_cell_size(context: ExecutionContext) -> Optional[float]:
    """Cell size from the dataset extent: the RR-tree root box over 16.

    Preferred over :func:`default_cell_size` whenever a context is at hand:
    a *clustered* workload's centroid extent is roughly its cluster-spread
    region, so dividing it by 16 fragments exactly the clusters the engine
    exists to exploit.  The dataset extent is workload-independent.
    """
    root = context.route_index.root
    box = getattr(root, "bbox", None) if root is not None else None
    if box is None:
        return None
    extent = max(box.max_x - box.min_x, box.max_y - box.min_y)
    if extent <= 0.0 or not math.isfinite(extent):
        return None
    return extent / GRID_DIVISIONS


def cluster_jobs(jobs: Sequence[Job], cell: Optional[float] = None) -> List[List[int]]:
    """Group job indices by (snap cell of the query centroid, excluded set).

    Deterministic: clusters appear in first-member order and keep their
    members in input order, so repeated runs (and the cluster-aware shard
    assignment built on top) are reproducible.  Queries with different
    excluded-route sets never share a cluster — their filter facts are not
    interchangeable.
    """
    centroids = [centroid(points) for points, _ in jobs]
    size = cell if cell and cell > 0 else locality_cell_override()
    if size is None or size <= 0:
        size = default_cell_size(centroids)
    groups: Dict[Tuple[int, int, FrozenSet[int]], List[int]] = {}
    for index, ((cx, cy), (_, excluded)) in enumerate(zip(centroids, jobs)):
        key = (int(math.floor(cx / size)), int(math.floor(cy / size)), excluded)
        groups.setdefault(key, []).append(index)
    return list(groups.values())


def _elect_pilot(
    members: Sequence[int], centroids: Sequence[Tuple[float, float]]
) -> int:
    """The member nearest the cluster's mean centroid (ties: first member)."""
    mx = sum(centroids[m][0] for m in members) / len(members)
    my = sum(centroids[m][1] for m in members) / len(members)
    best = members[0]
    best_d = float("inf")
    for member in members:
        dx = centroids[member][0] - mx
        dy = centroids[member][1] - my
        d = dx * dx + dy * dy
        if d < best_d:
            best_d = d
            best = member
    return best


def _directed_hausdorff(
    member_points: Sequence[Tuple[float, float]],
    pilot_points: Sequence[Tuple[float, float]],
) -> float:
    """max over member points of the distance to the nearest pilot point.

    This is the translation bound δ of the margin predicate: every member
    query point has a pilot point within δ, so a box provably filtered for
    every query within δ of the pilot is filtered for the member.
    """
    worst = 0.0
    for px, py in member_points:
        best = float("inf")
        for qx, qy in pilot_points:
            dx = px - qx
            dy = py - qy
            d = dx * dx + dy * dy
            if d < best:
                best = d
        worst = max(worst, math.sqrt(best))
    return worst


def _inflate_delta(delta: float) -> float:
    """Inflate δ by 1 part in 10⁹ to absorb float rounding conservatively."""
    return delta + 1e-9 * (1.0 + delta)


def _box_prune_thresholds(
    pilot: QueryExecutor, boxes, query, normalised
) -> List[float]:
    """Per-box prune threshold: the largest δ below which the δ-margin
    crossover accounting reaches ``k`` distinct routes (backend dispatch).

    A box with threshold ``t`` is provably filtered for *every* query
    within directed Hausdorff distance ``δ < t`` of the pilot — the
    δ-margin analogue of ``QueryExecutor._filtered_boxes``, step-1
    crossover accounting only (the per-route Voronoi step is skipped —
    strictly conservative).  The threshold is the slack of the filter point
    whose crossover set completes the accounting when filter points are
    consumed in decreasing-slack order; since reaching ``k`` only depends
    on the *union* of the crossover sets above a slack cutoff, the value is
    independent of tie order and bitwise identical across backends.
    ``-inf`` means the box is not margin-prunable at any δ.
    """
    packed = pilot.filter_set.packed()
    if len(packed) == 0:
        return [float("-inf")] * len(boxes)
    if pilot.backend == BACKEND_NUMPY:
        slack_matrix = kernels.boxes_margin_slack(boxes, packed.points, query)
        # Tie order between equal slacks is irrelevant (see below), so one
        # matrix argsort replaces a per-row sort; .tolist() keeps the
        # accounting loop on plain floats instead of numpy scalars.
        rows_by_slack = (-slack_matrix).argsort(axis=1, kind="stable").tolist()
        slack = slack_matrix.tolist()
    else:
        slack = kernels.boxes_margin_slack(
            [tuple(box) for box in boxes],
            [point for point, _ in pilot.filter_set.points_by_crossover()],
            normalised,
        )
        rows_by_slack = [
            sorted(
                range(len(row_slack)), key=lambda r: (-row_slack[r], r)
            )
            for row_slack in slack
        ]
    thresholds: List[float] = []
    for index in range(len(boxes)):
        dominating: set = set()
        threshold = float("-inf")
        for row in rows_by_slack[index]:
            row_slack = slack[index][row]
            if row_slack <= 0.0:
                # Sorted descending: no later row can yield a positive
                # threshold, and δ ≥ 0 always, so stop here.
                break
            crossover = packed.crossovers[row]
            if crossover <= dominating:
                continue
            dominating.update(crossover - pilot.excluded)
            if len(dominating) >= pilot.k:
                threshold = row_slack
                break
        thresholds.append(threshold)
    return thresholds


#: A shared candidate plus its prune threshold (see
#: :func:`_box_prune_thresholds`): a cluster member at inflated Hausdorff
#: distance ``h`` from the pilot drops the candidate without any exact
#: re-test when ``h < threshold``.
SharedCandidate = Tuple[Candidate, float]


def _margin_prune(
    pilot: QueryExecutor,
    pilot_points: Sequence[Tuple[float, float]],
    delta: float,
) -> List[SharedCandidate]:
    """One TR-tree traversal pruning with the δ-margin predicate.

    ``delta`` is the cluster-wide bound (the largest member Hausdorff
    distance): a box whose threshold exceeds it is filtered for every
    member and discarded outright.  Surviving leaf candidates are returned
    with their individual thresholds, so each member can additionally
    discard the ones its own — usually much smaller — distance still
    covers, and exact re-testing is left only for the truly borderline
    candidates.
    """
    candidates: List[SharedCandidate] = []
    tree = pilot.context.transition_index.tree
    if len(tree) == 0 or tree.root.bbox is None:
        return candidates
    normalised = [(float(p[0]), float(p[1])) for p in pilot_points]
    query = pilot._pack_query(normalised)

    if delta < _box_prune_thresholds(
        pilot, [tree.root.bbox.as_tuple()], query, normalised
    )[0]:
        return candidates
    stack: List[RTreeNode] = [tree.root]
    while stack:
        node = stack.pop()
        boxes = (
            node.packed_child_boxes()
            if pilot.backend == BACKEND_NUMPY
            else node.child_box_tuples()
        )
        thresholds = _box_prune_thresholds(pilot, boxes, query, normalised)
        if node.is_leaf:
            for entry, threshold in zip(node.children, thresholds):
                if delta < threshold:
                    continue
                assert isinstance(entry, RTreeEntry)
                for tag in entry.payload:
                    candidates.append(((entry.point, tag), threshold))
        else:
            for child, threshold in zip(node.children, thresholds):
                assert isinstance(child, RTreeNode)
                if not delta < threshold:
                    stack.append(child)
    return candidates


def _run_member(
    context: ExecutionContext,
    member_points: Sequence[Tuple[float, float]],
    k: int,
    plan: QueryPlan,
    excluded: FrozenSet[int],
    pilot: QueryExecutor,
    shared: List[SharedCandidate],
    member_delta: float,
    deadline: Optional[Deadline] = None,
) -> Tuple[Dict[int, set], QueryExecutor]:
    """One neighbour: seed from the pilot, re-test shared candidates, verify.

    The member's executor *shares* the pilot's filter set by reference (it
    never mutates it — only ``filter_routes`` adds points, and that phase
    is skipped entirely).  Shared candidates whose prune threshold exceeds
    ``member_delta`` (the member's inflated directed Hausdorff distance to
    the pilot) are dropped by the slack comparison alone; the borderline
    rest go through the member's exact ``_filtered_boxes`` predicate, which
    recomputes the filtering spaces against the member's own query points.
    A kept candidate is therefore exactly what the member's own prune would
    keep from this superset, and verification is exact as always.
    """
    executor = QueryExecutor(
        context,
        k,
        use_voronoi=plan.use_voronoi,
        exclude_route_ids=excluded,
        backend=plan.backend,
        filter_traversal=plan.filter_traversal,
        deadline=deadline,
    )
    executor.filter_set = pilot.filter_set

    started = time.perf_counter()
    normalised = [(float(p[0]), float(p[1])) for p in member_points]
    query = executor._pack_query(normalised)
    borderline = [
        candidate
        for candidate, threshold in shared
        if not member_delta < threshold
    ]
    kept: List[Candidate] = []
    for start in range(0, len(borderline), RETEST_CHUNK):
        chunk = borderline[start : start + RETEST_CHUNK]
        boxes = [(p[0], p[1], p[0], p[1]) for p, _ in chunk]
        mask = executor._filtered_boxes(boxes, query, normalised)
        kept.extend(cand for cand, filtered in zip(chunk, mask) if not filtered)
    executor.stats.candidates += len(kept)
    executor.stats.filtering_seconds += time.perf_counter() - started
    context.locality_retested += len(borderline)

    started = time.perf_counter()
    confirmed = executor.verify(normalised, kept)
    executor.stats.verification_seconds += time.perf_counter() - started
    return confirmed, executor


def _execute_cluster(
    context: ExecutionContext,
    jobs: Sequence[Job],
    members: Sequence[int],
    centroids: Sequence[Tuple[float, float]],
    k: int,
    plan: QueryPlan,
    semantics: Semantics,
    results: List[Optional[RkNNTResult]],
    deadline: Optional[Deadline] = None,
) -> None:
    """Pilot + seeded neighbours for one multi-member cluster."""
    pilot_index = _elect_pilot(members, centroids)
    pilot_points = [
        (float(p[0]), float(p[1])) for p in jobs[pilot_index][0]
    ]
    excluded = jobs[pilot_index][1]

    pilot = QueryExecutor(
        context,
        k,
        use_voronoi=plan.use_voronoi,
        exclude_route_ids=excluded,
        backend=plan.backend,
        filter_traversal=plan.filter_traversal,
        deadline=deadline,
    )
    confirmed = pilot.run(pilot_points)
    results[pilot_index] = RkNNTResult.from_confirmed(
        confirmed, semantics, k, pilot.stats
    )
    context.locality_clusters += 1

    neighbours = [m for m in members if m != pilot_index]
    member_points = {
        m: [(float(p[0]), float(p[1])) for p in jobs[m][0]] for m in neighbours
    }
    member_delta = {
        m: _inflate_delta(_directed_hausdorff(member_points[m], pilot_points))
        for m in neighbours
    }
    shared = _margin_prune(
        pilot, pilot_points, max(member_delta.values())
    )
    for m in neighbours:
        if deadline is not None:
            deadline.check("query")
        confirmed, executor = _run_member(
            context, member_points[m], k, plan, excluded, pilot, shared,
            member_delta[m], deadline=deadline,
        )
        context.locality_seeded += 1
        results[m] = RkNNTResult.from_confirmed(
            confirmed, semantics, k, executor.stats
        )


def _execute_batch_decomposed(
    context: ExecutionContext,
    jobs: Sequence[Job],
    k: int,
    plan: QueryPlan,
    semantics: Semantics,
    cell: Optional[float],
    deadline: Optional[Deadline] = None,
) -> List[RkNNTResult]:
    """Locality pre-pass for divide & conquer: memo the clustered sub-queries.

    Locality here is the near-hit tier below the context's sub-query memo
    cache: the batch's not-yet-memoised single-point sub-queries are
    clustered, each multi-member cluster is resolved with one pilot plus
    margin-seeded neighbours, and every answer is stored in the memo.  The
    ordinary decomposed execution loop then finds exact hits.  The peek
    uses :meth:`ExecutionContext.subquery_cached` so the pre-pass never
    touches the hit/miss counters.
    """
    pending: List[Tuple[Tuple[float, float], FrozenSet[int]]] = []
    seen = set()
    for points, excluded in jobs:
        for p in points:
            point = (float(p[0]), float(p[1]))
            key = (point, k, excluded, plan.use_voronoi)
            if key in seen or context.subquery_cached(key):
                continue
            seen.add(key)
            pending.append((point, excluded))

    point_jobs: List[Job] = [((point,), excluded) for point, excluded in pending]
    clusters = [c for c in cluster_jobs(point_jobs, cell) if len(c) >= 2]
    centroids = [point for point, _ in pending]
    for members in clusters:
        if deadline is not None:
            deadline.check("query")
        pilot_index = _elect_pilot(members, centroids)
        pilot_point, excluded = pending[pilot_index]
        pilot = QueryExecutor(
            context,
            k,
            use_voronoi=plan.use_voronoi,
            exclude_route_ids=excluded,
            backend=plan.backend,
            filter_traversal=plan.filter_traversal,
            deadline=deadline,
        )
        pilot_confirmed = pilot.run([pilot_point])
        context.subquery_store(
            (pilot_point, k, excluded, plan.use_voronoi),
            {
                transition_id: frozenset(endpoints)
                for transition_id, endpoints in pilot_confirmed.items()
            },
        )
        context.locality_clusters += 1
        neighbours = [m for m in members if m != pilot_index]
        member_delta = {
            m: _inflate_delta(
                _directed_hausdorff([pending[m][0]], [pilot_point])
            )
            for m in neighbours
        }
        shared = _margin_prune(
            pilot, [pilot_point], max(member_delta.values())
        )
        for m in neighbours:
            member_point = pending[m][0]
            confirmed, _ = _run_member(
                context, [member_point], k, plan, excluded, pilot, shared,
                member_delta[m], deadline=deadline,
            )
            context.locality_seeded += 1
            context.subquery_store(
                (member_point, k, excluded, plan.use_voronoi),
                {
                    transition_id: frozenset(endpoints)
                    for transition_id, endpoints in confirmed.items()
                },
            )
    return [
        _checked_execute(
            context, points, k, plan, semantics, excluded, deadline
        )
        for points, excluded in jobs
    ]


def _checked_execute(
    context: ExecutionContext,
    points,
    k: int,
    plan: QueryPlan,
    semantics: Semantics,
    excluded: FrozenSet[int],
    deadline: Optional[Deadline],
) -> RkNNTResult:
    """One plain :func:`execute` call with the batch deadline applied."""
    if deadline is not None:
        deadline.check("query")
    return execute(
        context,
        points,
        k,
        plan,
        semantics,
        exclude_route_ids=excluded,
        deadline=deadline,
    )


def execute_batch(
    context: ExecutionContext,
    jobs: Sequence[Job],
    k: int,
    plan: QueryPlan,
    semantics,
    cell: Optional[float] = None,
    deadline: Optional[Deadline] = None,
) -> List[RkNNTResult]:
    """Answer a batch of RkNNT queries, sharing filter work across clusters.

    With the locality engine off (the default) this is exactly the serial
    loop the processor always ran — one :func:`repro.engine.executor
    .execute` call per job.  With it on, spatially clustered jobs share
    their pilot's filter set as described in the module docstring; answers
    are identical either way, which ``tests/test_locality.py`` asserts
    differentially.
    """
    plan = plan.resolved()
    semantics = Semantics.coerce(semantics)
    normalised_jobs: List[Job] = [
        (points, frozenset(excluded or ())) for points, excluded in jobs
    ]
    if cell is None or cell <= 0:
        cell = locality_cell_override() or dataset_cell_size(context)
    if plan.locality != LOCALITY_ON or len(normalised_jobs) < 2:
        return [
            _checked_execute(context, points, k, plan, semantics, excluded, deadline)
            for points, excluded in normalised_jobs
        ]
    if plan.decompose:
        if not plan.share_subquery_cache:
            return [
                _checked_execute(
                    context, points, k, plan, semantics, excluded, deadline
                )
                for points, excluded in normalised_jobs
            ]
        return _execute_batch_decomposed(
            context, normalised_jobs, k, plan, semantics, cell, deadline=deadline
        )

    centroids = [centroid(points) for points, _ in normalised_jobs]
    results: List[Optional[RkNNTResult]] = [None] * len(normalised_jobs)
    for members in cluster_jobs(normalised_jobs, cell):
        if len(members) < 2:
            index = members[0]
            points, excluded = normalised_jobs[index]
            results[index] = _checked_execute(
                context, points, k, plan, semantics, excluded, deadline
            )
            continue
        _execute_cluster(
            context, normalised_jobs, members, centroids, k, plan, semantics,
            results, deadline=deadline,
        )
    return [result for result in results if result is not None]
