"""Per-dataset execution state shared across the queries of a workload.

Answering one RkNNT query needs nothing beyond the two indexes; answering a
*workload* of queries profitably shares two further structures, both owned by
:class:`ExecutionContext`:

* the **route matrix** — every (non-excluded) route's points flattened into
  coordinate arrays with per-route offsets, which is what the vectorized
  verification kernel (:func:`repro.geometry.kernels.count_closer_routes`)
  reduces over.  Building it is O(total route points); sharing it across a
  batch amortises that to nothing.  The matrix is *chunked by route blocks*
  (``RKNNT_MATRIX_BLOCK_ROWS`` bounds the point rows per block) so that the
  per-candidate distance matrix materialised during verification never
  exceeds ``chunk × block`` elements even at the paper's NYC scale.
* the **single-point answer cache** — confirmed endpoint maps of single-point
  sub-queries, keyed by ``(point, k, excluded, voronoi)``.  Divide & conquer
  decomposes every query into per-point sub-queries (Lemma 3) and real
  workloads repeat points heavily (bus stops shared by many routes, network
  vertices queried by both the planner pre-computation and capacity
  estimation), so batch workloads hit this cache constantly.

Both caches are invalidated automatically through the indexes' ``version``
counters, so dynamic route/transition updates keep the context correct
without manual cache management.  Invalidation is *delta-aware* for
transition churn: the context subscribes to the transition index's typed
mutation stream (see :mod:`repro.index.transition_index`), and when only
transitions changed, memoised single-point answers are **patched** — a
deleted transition is dropped from every cached answer, an inserted one is
verified against each cached query point — instead of thrown away.  Only
route mutations (which change the geometry every cached answer was verified
against), a gap in the delta stream, or an oversized patch workload fall
back to the wholesale clear.

Contexts are also what the parallel execution layer ships to its worker
processes (see :mod:`repro.engine.parallel`): pickling a context serialises
the datasets and indexes but *never* the derived caches — ``__getstate__``
strips them, and each worker lazily rebuilds its own.  Since the columnar
dataset core (:mod:`repro.engine.columnar`), the indexes serialise
themselves as packed sorted-id/coordinate columns instead of object
graphs, so the reseed payload is severalfold smaller, byte-deterministic,
and identical under the ``fork`` and ``spawn`` start methods
(``RKNNT_COLUMNAR=0`` restores the legacy object pickles).
"""

from __future__ import annotations

import os
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.geometry import kernels
from repro.index.route_index import RouteIndex
from repro.index.transition_index import (
    DELTA_DELETE,
    DESTINATION,
    ORIGIN,
    TransitionDelta,
    TransitionIndex,
)

#: Key of a memoised single-point sub-query:
#: (point, k, excluded route ids, use_voronoi).
SubqueryKey = Tuple[Tuple[float, float], int, FrozenSet[int], bool]

#: Memoised answer: transition id -> confirmed endpoint labels.
ConfirmedMap = Dict[int, FrozenSet[str]]

#: Soft cap on the number of memoised sub-queries; the cache is cleared
#: wholesale when it is reached (simple and good enough for workloads whose
#: distinct query points are far below the cap).
SUBQUERY_CACHE_LIMIT = 100_000

#: Upper bound on ``pending transition deltas × cached sub-queries`` for
#: delta patching.  Each pending *insert* costs up to two exact endpoint
#: verifications per cached answer; past this budget a wholesale clear is
#: cheaper than patching, so the context falls back to it.
SUBQUERY_PATCH_BUDGET = 50_000

#: Pending transition deltas retained for cache patching; a longer backlog
#: than this (an update storm against an idle context) overflows into the
#: wholesale clear.
PENDING_DELTA_LIMIT = 1_000

#: Environment knob bounding the number of flattened point rows per route
#: block of the verification matrix.  Smaller blocks cap the peak size of
#: the per-candidate distance matrix; the default keeps one block ~1.5 MB of
#: float64 coordinates, far below any practical working set, while NYC-scale
#: datasets split into many blocks instead of one giant array.
MATRIX_BLOCK_ROWS_ENV = "RKNNT_MATRIX_BLOCK_ROWS"
DEFAULT_MATRIX_BLOCK_ROWS = 100_000


def matrix_block_rows() -> int:
    """The configured route-block row bound (``RKNNT_MATRIX_BLOCK_ROWS``).

    Invalid or non-positive values fall back to the default — a mistyped
    tuning knob must never change answers or crash a query.
    """
    raw = os.environ.get(MATRIX_BLOCK_ROWS_ENV, "").strip()
    if raw:
        try:
            value = int(raw)
        except ValueError:
            return DEFAULT_MATRIX_BLOCK_ROWS
        if value > 0:
            return value
    return DEFAULT_MATRIX_BLOCK_ROWS


class RouteMatrixBlock:
    """One route block of the flattened verification matrix.

    Attributes
    ----------
    points:
        The block's route points, grouped by route, packed via
        :func:`repro.geometry.kernels.pack_points`.
    offsets:
        Start index of each route's group inside ``points``.
    column_route_ids:
        Route id of each column (group), in order.
    column_of_route:
        Inverse mapping: route id -> column index within this block.
    """

    __slots__ = ("points", "offsets", "column_route_ids", "column_of_route")

    def __init__(self, points, offsets, column_route_ids):
        self.points = points
        self.offsets = offsets
        self.column_route_ids = column_route_ids
        self.column_of_route = {
            route_id: column for column, route_id in enumerate(column_route_ids)
        }

    @property
    def route_count(self) -> int:
        return len(self.column_route_ids)

    def excluded_columns(self, route_ids) -> List[int]:
        """Column indices of the given route ids (ids not in this block are
        skipped — every route lives in exactly one block)."""
        return sorted(
            self.column_of_route[route_id]
            for route_id in route_ids
            if route_id in self.column_of_route
        )


class RouteMatrix:
    """The flattened verification matrix, chunked by route blocks.

    Each block covers a contiguous run of routes whose flattened points stay
    within the ``RKNNT_MATRIX_BLOCK_ROWS`` bound (a single route longer than
    the bound forms its own block — routes are never split, because the
    verification kernel reduces per route).  Every route appears in exactly
    one block, so per-block closer-route counts sum to the global count.
    """

    __slots__ = ("blocks",)

    def __init__(self, blocks: Sequence[RouteMatrixBlock]):
        self.blocks = list(blocks)

    @property
    def route_count(self) -> int:
        return sum(block.route_count for block in self.blocks)

    @property
    def point_rows(self) -> int:
        """Total flattened point rows across every block."""
        return sum(len(block.points) for block in self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)


class ExecutionContext:
    """Shared per-dataset state for the query-execution engine.

    One context per (route index, transition index) pair; a
    :class:`~repro.core.rknnt.RkNNTProcessor` owns one for its lifetime and
    routes every query through it.  All cached state is derived and
    version-guarded, so holding a context never produces stale answers.
    """

    def __init__(
        self, route_index: RouteIndex, transition_index: TransitionIndex
    ):
        self.route_index = route_index
        self.transition_index = transition_index
        self._route_matrix: Optional[RouteMatrix] = None
        self._route_matrix_version = -1
        #: Keeps a shared-memory arena attachment (and hence its mapping)
        #: alive for as long as this context — whose route matrix and tree
        #: caches may hold views into the segment — is alive.  Set by
        #: :func:`repro.engine.arena.attach_arena`, never pickled.
        self._arena_attachment: Optional[object] = None
        #: Handle of the persistent store file backing this context's
        #: indexes, or ``None``.  Set by :func:`repro.engine.store
        #: .attach_context` (worker boot) and by store-booted processors;
        #: while the indexes are still at the handle's packed versions, a
        #: serving reseed ships this handle instead of a columnar pickle
        #: and the arena publisher short-circuits (the store file is
        #: already file-backed shared memory through the page cache).
        self.store_handle = None
        #: The attached :class:`repro.engine.store.Store` (keeps the file
        #: mapping reachable for introspection).  Never pickled.
        self._store_attachment: Optional[object] = None
        self._subqueries: Dict[SubqueryKey, ConfirmedMap] = {}
        self._subquery_versions: Tuple[int, int] = (-1, -1)
        #: Cache statistics (useful for benchmark reporting).
        self.subquery_hits = 0
        self.subquery_misses = 0
        #: Delta-patching statistics: transition deltas folded into the
        #: cached answers, and wholesale clears that were actually forced.
        self.subquery_patches = 0
        self.subquery_clears = 0
        #: Query-locality engine statistics (see ``engine/locality.py``):
        #: multi-member clusters executed, neighbour queries seeded from a
        #: pilot's filter set, and shared candidates re-tested against a
        #: neighbour's exact predicate.
        self.locality_clusters = 0
        self.locality_seeded = 0
        self.locality_retested = 0
        #: Batches that asked for a per-call worker pool but ran serially
        #: instead — fewer than two usable CPUs, or a batch smaller than
        #: ``RKNNT_MIN_SHARD_BATCH`` (see ``engine/parallel.py``).
        self.shard_fallbacks = 0
        #: Transition deltas observed since the cache was last validated
        #: (bounded; overflow falls back to the wholesale clear).
        self._pending_deltas: List[TransitionDelta] = []
        self._delta_overflow = False
        #: The mutation listener is attached lazily, on the first memoised
        #: sub-query: throwaway contexts (the legacy per-call wrappers
        #: create one per query over shared indexes) must not accumulate on
        #: the index's listener list — only a context that actually holds
        #: patchable state subscribes.  Deltas missed before attachment are
        #: harmless: the contiguous-version check in
        #: :meth:`_try_patch_subqueries` detects the gap and clears.
        self._delta_listener_attached = False

    # ------------------------------------------------------------------
    # Route matrix (vectorized verification)
    # ------------------------------------------------------------------
    def route_matrix(self) -> RouteMatrix:
        """The flattened route-point matrix, rebuilt after dynamic updates."""
        version = self.route_index.version
        if self._route_matrix is None or self._route_matrix_version != version:
            self._route_matrix = self._build_route_matrix()
            self._route_matrix_version = version
        return self._route_matrix

    def install_route_matrix(self, matrix: RouteMatrix, version: int) -> None:
        """Install an externally built route matrix (shared-memory attach).

        Used by :mod:`repro.engine.arena` when a worker attaches to a
        published dataset arena: the blocks then hold read-only views of the
        shared segment instead of privately rebuilt arrays.  The matrix is
        tagged with the route-index ``version`` it was built against, so the
        normal version guard still applies — if the routes churn afterwards,
        the context silently falls back to a private rebuild (shared views
        are never written to).
        """
        self._route_matrix = matrix
        self._route_matrix_version = version

    def _build_route_matrix(self) -> RouteMatrix:
        excluded = self.route_index.excluded_route_ids
        block_rows = matrix_block_rows()
        blocks: List[RouteMatrixBlock] = []
        flat: List[Tuple[float, float]] = []
        offsets: List[int] = []
        column_ids: List[int] = []

        def cut_block() -> None:
            if column_ids:
                blocks.append(
                    RouteMatrixBlock(
                        kernels.pack_points(flat), list(offsets), list(column_ids)
                    )
                )
                flat.clear()
                offsets.clear()
                column_ids.clear()

        for route in self.route_index.routes:
            if route.route_id in excluded:
                continue
            # Cut before a route that would overflow the block (never after
            # appending: a route must stay whole within one block).
            if flat and len(flat) + len(route.points) > block_rows:
                cut_block()
            offsets.append(len(flat))
            column_ids.append(route.route_id)
            flat.extend((point.x, point.y) for point in route.points)
        cut_block()
        return RouteMatrix(blocks)

    # ------------------------------------------------------------------
    # Single-point sub-query cache (divide & conquer, planning bulk build)
    # ------------------------------------------------------------------
    def _current_versions(self) -> Tuple[int, int]:
        return (self.route_index.version, self.transition_index.version)

    def _on_transition_delta(self, delta: TransitionDelta) -> None:
        """Record one transition mutation for later cache patching."""
        if self._delta_overflow:
            return
        self._pending_deltas.append(delta)
        if len(self._pending_deltas) > PENDING_DELTA_LIMIT:
            self._delta_overflow = True
            self._pending_deltas.clear()

    def _validate_subqueries(self) -> None:
        versions = self._current_versions()
        if versions == self._subquery_versions:
            return
        if not self._try_patch_subqueries(versions):
            if self._subqueries:
                self.subquery_clears += 1
            self._subqueries.clear()
            self._pending_deltas.clear()
            self._delta_overflow = False
        self._subquery_versions = versions

    def _try_patch_subqueries(self, versions: Tuple[int, int]) -> bool:
        """Fold pending transition deltas into the cached answers.

        Patching is valid only when (a) the route set is untouched — a
        cached answer's confirmations depend on the routes, so any route
        mutation invalidates them all — and (b) the pending deltas form the
        exact contiguous version range between the cached state and now, so
        nothing was missed.  Each delta is then exact: a delete drops the
        transition from every answer (other transitions are unaffected),
        an insert verifies the two new endpoints against every cached query
        point with the same squared-distance comparisons the engine's
        verification stage makes.  Oversized patch workloads fall back to
        the wholesale clear (``SUBQUERY_PATCH_BUDGET``).
        """
        old_route, old_transition = self._subquery_versions
        new_route, new_transition = versions
        if new_route != old_route or self._delta_overflow or old_transition < 0:
            return False
        applicable = [
            delta
            for delta in self._pending_deltas
            if old_transition < delta.version <= new_transition
        ]
        if [delta.version for delta in applicable] != list(
            range(old_transition + 1, new_transition + 1)
        ):
            return False
        if len(applicable) * max(1, len(self._subqueries)) > SUBQUERY_PATCH_BUDGET:
            return False
        for delta in applicable:
            if delta.kind == DELTA_DELETE:
                for answer in self._subqueries.values():
                    answer.pop(delta.transition.transition_id, None)
            else:
                self._patch_insert(delta.transition)
            self.subquery_patches += 1
        self._pending_deltas = [
            delta
            for delta in self._pending_deltas
            if delta.version > new_transition
        ]
        return True

    def _patch_insert(self, transition) -> None:
        """Verify an inserted transition against every cached sub-query."""
        # Local import: repro.core.knn is import-safe here only after the
        # package cycle between repro.core and repro.engine is resolved.
        from repro.core.knn import closer_route_count

        for key, answer in self._subqueries.items():
            query_point, k, excluded, _ = key
            labels = set()
            for label, point in (
                (ORIGIN, transition.origin),
                (DESTINATION, transition.destination),
            ):
                closer = closer_route_count(
                    self.route_index,
                    point,
                    [query_point],
                    k,
                    exclude_route_ids=set(excluded),
                )
                if closer < k:
                    labels.add(label)
            if labels:
                answer[transition.transition_id] = frozenset(labels)
            else:
                answer.pop(transition.transition_id, None)

    def subquery_lookup(self, key: SubqueryKey) -> Optional[ConfirmedMap]:
        """Memoised answer of a single-point sub-query, or ``None``."""
        self._validate_subqueries()
        answer = self._subqueries.get(key)
        if answer is None:
            self.subquery_misses += 1
        else:
            self.subquery_hits += 1
        return answer

    def subquery_cached(self, key: SubqueryKey) -> bool:
        """Membership peek that does **not** touch the hit/miss counters.

        The query-locality pre-pass (see ``engine/locality.py``) uses this
        to decide which sub-queries still need resolving; counting those
        peeks would make the shared-path statistics diverge from the
        unshared run, breaking the differential counter discipline.
        """
        self._validate_subqueries()
        return key in self._subqueries

    def subquery_store(self, key: SubqueryKey, confirmed: ConfirmedMap) -> None:
        """Memoise the answer of a single-point sub-query."""
        if not self._delta_listener_attached:
            self.transition_index.add_listener(self._on_transition_delta)
            self._delta_listener_attached = True
        self._validate_subqueries()
        if len(self._subqueries) >= SUBQUERY_CACHE_LIMIT:
            self._subqueries.clear()
        self._subqueries[key] = confirmed

    # ------------------------------------------------------------------
    # Pickling (parallel execution layer)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Pickle only the primary state, never the derived caches.

        Shipping a context to a shard worker (see
        :mod:`repro.engine.parallel`) must serialise the datasets and
        indexes exactly once — the lazily-built route matrix and the
        memoised sub-query answers are derived, potentially large, and
        cheap to rebuild per worker, so they are stripped here.
        """
        state = self.__dict__.copy()
        state["_route_matrix"] = None
        state["_route_matrix_version"] = -1
        state["_arena_attachment"] = None
        state["_store_attachment"] = None
        state["_subqueries"] = {}
        state["_subquery_versions"] = (-1, -1)
        state["subquery_hits"] = 0
        state["subquery_misses"] = 0
        state["subquery_patches"] = 0
        state["subquery_clears"] = 0
        state["locality_clusters"] = 0
        state["locality_seeded"] = 0
        state["locality_retested"] = 0
        state["shard_fallbacks"] = 0
        state["_pending_deltas"] = []
        state["_delta_overflow"] = False
        # The transition index strips listeners from its own pickle; the
        # unpickled context re-attaches lazily on its first memoised
        # sub-query, like a freshly constructed one.
        state["_delta_listener_attached"] = False
        return state

    def reseed_payload_nbytes(self) -> int:
        """Byte size of this context's serving reseed payload (its pickle).

        Exactly what a pool (re)seed ships to every worker; the serving
        benchmark records it before/after the columnar encoding so payload
        regressions show up in the ``BENCH_batch.json`` trajectory.
        """
        import pickle

        return len(pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL))

    def clear_caches(self) -> None:
        """Drop every derived cache (answers stay correct without this —
        version counters already invalidate on updates; use it to bound
        memory or to time cold-cache execution)."""
        self._route_matrix = None
        self._route_matrix_version = -1
        self._subqueries.clear()
        self._subquery_versions = (-1, -1)
        self._pending_deltas = []
        self._delta_overflow = False
        self.subquery_hits = 0
        self.subquery_misses = 0
        self.subquery_patches = 0
        self.subquery_clears = 0
        self.locality_clusters = 0
        self.locality_seeded = 0
        self.locality_retested = 0
        self.shard_fallbacks = 0

    #: Counter fields shipped back from shard workers (see
    #: :meth:`counter_snapshot` / :meth:`merge_counters`).
    COUNTER_FIELDS = (
        "subquery_hits",
        "subquery_misses",
        "subquery_patches",
        "subquery_clears",
        "locality_clusters",
        "locality_seeded",
        "locality_retested",
        "shard_fallbacks",
    )

    def counter_snapshot(self) -> Dict[str, int]:
        """Current values of every reuse/locality counter, by name.

        Shard workers snapshot before and after executing their slice and
        ship the difference home, so the parent context's counters reflect
        the whole batch no matter where each query actually ran.
        """
        return {name: getattr(self, name) for name in self.COUNTER_FIELDS}

    def merge_counters(self, delta: Dict[str, int]) -> None:
        """Fold a worker's counter delta into this context's counters."""
        for name in self.COUNTER_FIELDS:
            setattr(self, name, getattr(self, name) + delta.get(name, 0))

    def __repr__(self) -> str:
        return (
            f"ExecutionContext(routes={len(self.route_index.routes)}, "
            f"transitions={len(self.transition_index.transitions)}, "
            f"cached_subqueries={len(self._subqueries)})"
        )
