"""Per-dataset execution state shared across the queries of a workload.

Answering one RkNNT query needs nothing beyond the two indexes; answering a
*workload* of queries profitably shares two further structures, both owned by
:class:`ExecutionContext`:

* the **route matrix** — every (non-excluded) route's points flattened into
  one coordinate array with per-route offsets, which is what the vectorized
  verification kernel (:func:`repro.geometry.kernels.count_closer_routes`)
  reduces over.  Building it is O(total route points); sharing it across a
  batch amortises that to nothing.
* the **single-point answer cache** — confirmed endpoint maps of single-point
  sub-queries, keyed by ``(point, k, excluded, voronoi)``.  Divide & conquer
  decomposes every query into per-point sub-queries (Lemma 3) and real
  workloads repeat points heavily (bus stops shared by many routes, network
  vertices queried by both the planner pre-computation and capacity
  estimation), so batch workloads hit this cache constantly.

Both caches are invalidated automatically through the indexes' ``version``
counters, so dynamic route/transition updates keep the context correct
without manual cache management.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.geometry import kernels
from repro.index.route_index import RouteIndex
from repro.index.transition_index import TransitionIndex

#: Key of a memoised single-point sub-query:
#: (point, k, excluded route ids, use_voronoi).
SubqueryKey = Tuple[Tuple[float, float], int, FrozenSet[int], bool]

#: Memoised answer: transition id -> confirmed endpoint labels.
ConfirmedMap = Dict[int, FrozenSet[str]]

#: Soft cap on the number of memoised sub-queries; the cache is cleared
#: wholesale when it is reached (simple and good enough for workloads whose
#: distinct query points are far below the cap).
SUBQUERY_CACHE_LIMIT = 100_000


class RouteMatrix:
    """Flattened per-route point arrays for the vectorized verifier.

    Attributes
    ----------
    points:
        All route points, grouped by route, packed via
        :func:`repro.geometry.kernels.pack_points`.
    offsets:
        Start index of each route's group inside ``points``.
    column_route_ids:
        Route id of each column (group), in order.
    column_of_route:
        Inverse mapping: route id -> column index.
    """

    __slots__ = ("points", "offsets", "column_route_ids", "column_of_route")

    def __init__(self, points, offsets, column_route_ids):
        self.points = points
        self.offsets = offsets
        self.column_route_ids = column_route_ids
        self.column_of_route = {
            route_id: column for column, route_id in enumerate(column_route_ids)
        }

    @property
    def route_count(self) -> int:
        return len(self.column_route_ids)

    def excluded_columns(self, route_ids) -> List[int]:
        """Column indices of the given route ids (ids not indexed are skipped)."""
        return sorted(
            self.column_of_route[route_id]
            for route_id in route_ids
            if route_id in self.column_of_route
        )


class ExecutionContext:
    """Shared per-dataset state for the query-execution engine.

    One context per (route index, transition index) pair; a
    :class:`~repro.core.rknnt.RkNNTProcessor` owns one for its lifetime and
    routes every query through it.  All cached state is derived and
    version-guarded, so holding a context never produces stale answers.
    """

    def __init__(
        self, route_index: RouteIndex, transition_index: TransitionIndex
    ):
        self.route_index = route_index
        self.transition_index = transition_index
        self._route_matrix: Optional[RouteMatrix] = None
        self._route_matrix_version = -1
        self._subqueries: Dict[SubqueryKey, ConfirmedMap] = {}
        self._subquery_versions: Tuple[int, int] = (-1, -1)
        #: Cache statistics (useful for benchmark reporting).
        self.subquery_hits = 0
        self.subquery_misses = 0

    # ------------------------------------------------------------------
    # Route matrix (vectorized verification)
    # ------------------------------------------------------------------
    def route_matrix(self) -> RouteMatrix:
        """The flattened route-point matrix, rebuilt after dynamic updates."""
        version = self.route_index.version
        if self._route_matrix is None or self._route_matrix_version != version:
            self._route_matrix = self._build_route_matrix()
            self._route_matrix_version = version
        return self._route_matrix

    def _build_route_matrix(self) -> RouteMatrix:
        excluded = self.route_index.excluded_route_ids
        flat: List[Tuple[float, float]] = []
        offsets: List[int] = []
        column_ids: List[int] = []
        for route in self.route_index.routes:
            if route.route_id in excluded:
                continue
            offsets.append(len(flat))
            column_ids.append(route.route_id)
            flat.extend((point.x, point.y) for point in route.points)
        return RouteMatrix(kernels.pack_points(flat), offsets, column_ids)

    # ------------------------------------------------------------------
    # Single-point sub-query cache (divide & conquer, planning bulk build)
    # ------------------------------------------------------------------
    def _current_versions(self) -> Tuple[int, int]:
        return (self.route_index.version, self.transition_index.version)

    def _validate_subqueries(self) -> None:
        versions = self._current_versions()
        if versions != self._subquery_versions:
            self._subqueries.clear()
            self._subquery_versions = versions

    def subquery_lookup(self, key: SubqueryKey) -> Optional[ConfirmedMap]:
        """Memoised answer of a single-point sub-query, or ``None``."""
        self._validate_subqueries()
        answer = self._subqueries.get(key)
        if answer is None:
            self.subquery_misses += 1
        else:
            self.subquery_hits += 1
        return answer

    def subquery_store(self, key: SubqueryKey, confirmed: ConfirmedMap) -> None:
        """Memoise the answer of a single-point sub-query."""
        self._validate_subqueries()
        if len(self._subqueries) >= SUBQUERY_CACHE_LIMIT:
            self._subqueries.clear()
        self._subqueries[key] = confirmed

    def clear_caches(self) -> None:
        """Drop every derived cache (answers stay correct without this —
        version counters already invalidate on updates; use it to bound
        memory or to time cold-cache execution)."""
        self._route_matrix = None
        self._route_matrix_version = -1
        self._subqueries.clear()
        self.subquery_hits = 0
        self.subquery_misses = 0

    def __repr__(self) -> str:
        return (
            f"ExecutionContext(routes={len(self.route_index.routes)}, "
            f"transitions={len(self.transition_index.transitions)}, "
            f"cached_subqueries={len(self._subqueries)})"
        )
