"""Query plans: declarative descriptions of the evaluation strategies.

A :class:`QueryPlan` tells the executor *how* to run the filter → prune →
verify pipeline; the three method names of the paper are just canned plans:

==================  =============  ===========  =========================
method              use_voronoi    decompose    paper section
==================  =============  ===========  =========================
``filter-refine``   no             no           Section 4
``voronoi``         yes            no           Section 5.1
``divide-conquer``  yes            per point    Section 5.2 (Lemma 3)
==================  =============  ===========  =========================

The ``backend`` knob selects the geometry kernel implementation
(``"python"`` — the scalar predicates, ``"numpy"`` — the vectorized batch
kernels, ``"auto"`` — numpy when available).  Results are identical on
either backend; only the speed differs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.geometry.kernels import BACKEND_AUTO, resolve_backend

FILTER_REFINE = "filter-refine"
VORONOI = "voronoi"
DIVIDE_CONQUER = "divide-conquer"
METHODS = (FILTER_REFINE, VORONOI, DIVIDE_CONQUER)


@dataclass(frozen=True)
class QueryPlan:
    """How to execute one RkNNT query (or a batch of them).

    Attributes
    ----------
    method:
        The user-facing method name this plan implements.
    use_voronoi:
        Enable the per-route Voronoi filtering space (Definition 8) in the
        ``is_filtered`` predicate.
    decompose:
        Run one single-point sub-query per query point and union the
        confirmations (Lemma 3) instead of one multi-point pass.
    backend:
        Geometry-kernel backend: ``"auto"``, ``"numpy"`` or ``"python"``.
    share_subquery_cache:
        Let decomposed sub-queries reuse (and populate) the execution
        context's single-point answer cache.  Enabled for batch workloads
        where repeated points are common (divide & conquer over overlapping
        routes, per-vertex planning pre-computation); disabled for one-shot
        queries so their reported statistics reflect the work actually done.
    """

    method: str
    use_voronoi: bool
    decompose: bool
    backend: str = BACKEND_AUTO
    share_subquery_cache: bool = False

    @classmethod
    def for_method(
        cls,
        method: str,
        backend: str = BACKEND_AUTO,
        share_subquery_cache: bool = False,
    ) -> "QueryPlan":
        """The canned plan for one of the paper's three method names."""
        if method not in METHODS:
            raise ValueError(
                f"unknown method {method!r}; expected one of {METHODS}"
            )
        return cls(
            method=method,
            use_voronoi=(method in (VORONOI, DIVIDE_CONQUER)),
            decompose=(method == DIVIDE_CONQUER),
            backend=backend,
            share_subquery_cache=share_subquery_cache,
        )

    def resolved(self) -> "QueryPlan":
        """A copy with ``"auto"`` resolved to a concrete backend."""
        return replace(self, backend=resolve_backend(self.backend))
