"""Query plans: declarative descriptions of the evaluation strategies.

A :class:`QueryPlan` tells the executor *how* to run the filter → prune →
verify pipeline; the three method names of the paper are just canned plans:

==================  =============  ===========  =========================
method              use_voronoi    decompose    paper section
==================  =============  ===========  =========================
``filter-refine``   no             no           Section 4
``voronoi``         yes            no           Section 5.1
``divide-conquer``  yes            per point    Section 5.2 (Lemma 3)
==================  =============  ===========  =========================

The ``backend`` knob selects the geometry kernel implementation
(``"python"`` — the scalar predicates, ``"numpy"`` — the vectorized batch
kernels, ``"auto"`` — numpy when available).  Results are identical on
either backend; only the speed differs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

from repro.geometry.kernels import BACKEND_AUTO, resolve_backend

FILTER_REFINE = "filter-refine"
VORONOI = "voronoi"
DIVIDE_CONQUER = "divide-conquer"
METHODS = (FILTER_REFINE, VORONOI, DIVIDE_CONQUER)

#: Filter-phase traversal styles (see ``engine/executor.py``):
#: ``"block"`` expands all children of the best node per kernel call,
#: ``"node"`` is the node-at-a-time heap loop of the original engine.
#: Both make identical decisions; only the speed differs.
TRAVERSAL_AUTO = "auto"
TRAVERSAL_BLOCK = "block"
TRAVERSAL_NODE = "node"
TRAVERSALS = (TRAVERSAL_AUTO, TRAVERSAL_BLOCK, TRAVERSAL_NODE)

#: Set ``RKNNT_FILTER_TRAVERSAL=node`` to globally force the node-at-a-time
#: filter traversal (used by the traversal-equivalence benchmark and as an
#: escape hatch).
TRAVERSAL_ENV = "RKNNT_FILTER_TRAVERSAL"

#: Query-locality engine (see ``engine/locality.py``): ``"on"`` clusters a
#: batch workload spatially, runs one pilot per cluster and seeds the
#: neighbours from the pilot's retained filter set.  Answers are identical
#: with the engine on or off; only the work done differs.
LOCALITY_AUTO = "auto"
LOCALITY_ON = "on"
LOCALITY_OFF = "off"
LOCALITIES = (LOCALITY_AUTO, LOCALITY_ON, LOCALITY_OFF)

#: Set ``RKNNT_LOCALITY=1`` to enable the query-locality engine for batch
#: and standing workloads whose plan leaves ``locality="auto"``.
LOCALITY_ENV = "RKNNT_LOCALITY"


def default_locality() -> str:
    """Resolve ``"auto"``: on when ``RKNNT_LOCALITY`` is truthy, else off.

    Invalid values fall back to off — a mistyped tuning knob must never
    change answers or crash a query.
    """
    value = os.environ.get(LOCALITY_ENV, "").strip().lower()
    if value in ("1", "true", "yes", "on"):
        return LOCALITY_ON
    return LOCALITY_OFF


def resolve_locality(locality: str) -> str:
    """Validate a locality mode and resolve ``"auto"`` to a concrete one."""
    if locality not in LOCALITIES:
        raise ValueError(
            f"unknown locality mode {locality!r}; expected one of {LOCALITIES}"
        )
    if locality == LOCALITY_AUTO:
        return default_locality()
    return locality


def default_filter_traversal() -> str:
    """Resolve ``"auto"``: the env override when set, else block expansion."""
    value = os.environ.get(TRAVERSAL_ENV, "").strip().lower()
    if value in (TRAVERSAL_BLOCK, TRAVERSAL_NODE):
        return value
    return TRAVERSAL_BLOCK


def resolve_traversal(traversal: str) -> str:
    """Validate a traversal name and resolve ``"auto"`` to a concrete style.

    The single source of truth for traversal resolution — both
    :meth:`QueryPlan.resolved` and direct :class:`~repro.engine.executor
    .QueryExecutor` construction go through it (mirroring how backend
    resolution lives only in :func:`repro.geometry.kernels.resolve_backend`).
    """
    if traversal not in TRAVERSALS:
        raise ValueError(
            f"unknown filter traversal {traversal!r}; "
            f"expected one of {TRAVERSALS}"
        )
    if traversal == TRAVERSAL_AUTO:
        return default_filter_traversal()
    return traversal


@dataclass(frozen=True)
class QueryPlan:
    """How to execute one RkNNT query (or a batch of them).

    Attributes
    ----------
    method:
        The user-facing method name this plan implements.
    use_voronoi:
        Enable the per-route Voronoi filtering space (Definition 8) in the
        ``is_filtered`` predicate.
    decompose:
        Run one single-point sub-query per query point and union the
        confirmations (Lemma 3) instead of one multi-point pass.
    backend:
        Geometry-kernel backend: ``"auto"``, ``"numpy"`` or ``"python"``.
    share_subquery_cache:
        Let decomposed sub-queries reuse (and populate) the execution
        context's single-point answer cache.  Enabled for batch workloads
        where repeated points are common (divide & conquer over overlapping
        routes, per-vertex planning pre-computation); disabled for one-shot
        queries so their reported statistics reflect the work actually done.
    filter_traversal:
        RR-tree filter-phase traversal: ``"block"`` (expand whole child
        blocks per kernel call), ``"node"`` (the original node-at-a-time
        loop) or ``"auto"`` (the ``RKNNT_FILTER_TRAVERSAL`` env override,
        defaulting to block expansion).  Answers and traversal statistics
        are identical either way.
    locality:
        Query-locality engine (``engine/locality.py``): ``"on"`` shares
        pilot filter sets across spatially clustered batch queries,
        ``"off"`` runs every query independently, ``"auto"`` follows the
        ``RKNNT_LOCALITY`` environment knob (default off).  Answers are
        identical either way.
    """

    method: str
    use_voronoi: bool
    decompose: bool
    backend: str = BACKEND_AUTO
    share_subquery_cache: bool = False
    filter_traversal: str = TRAVERSAL_AUTO
    locality: str = LOCALITY_AUTO

    @classmethod
    def for_method(
        cls,
        method: str,
        backend: str = BACKEND_AUTO,
        share_subquery_cache: bool = False,
    ) -> "QueryPlan":
        """The canned plan for one of the paper's three method names."""
        if method not in METHODS:
            raise ValueError(
                f"unknown method {method!r}; expected one of {METHODS}"
            )
        return cls(
            method=method,
            use_voronoi=(method in (VORONOI, DIVIDE_CONQUER)),
            decompose=(method == DIVIDE_CONQUER),
            backend=backend,
            share_subquery_cache=share_subquery_cache,
        )

    def resolved(self) -> "QueryPlan":
        """A copy with every ``"auto"`` knob resolved to a concrete choice."""
        return replace(
            self,
            backend=resolve_backend(self.backend),
            filter_traversal=resolve_traversal(self.filter_traversal),
            locality=resolve_locality(self.locality),
        )
