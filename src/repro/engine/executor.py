"""The staged query executor: one pipeline behind all three methods.

:class:`QueryExecutor` generalises the seed's ``FilterRefineEngine`` into a
backend-parameterised pipeline (Algorithms 1–4 of the paper):

* **filter** — best-first RR-tree traversal building the filtering set;
* **prune** — TR-tree traversal discarding nodes and endpoints dominated by
  at least ``k`` distinct routes, testing whole child/entry blocks per
  kernel call on the vectorized backend;
* **verify** — exact confirmation of the survivors, either through the
  RR-tree (scalar backend) or against the context's flattened route matrix
  in one reduction (numpy backend).

Both backends evaluate the same elementary-float expressions, so they return
element-wise identical answers; the differential tests in
``tests/test_engine_batch.py`` assert exactly that, per method and per
semantics, against the brute-force oracle.

The module-level :func:`execute` function adds the strategy layer on top
(per-point decomposition for divide & conquer, with sub-query memoisation
through the :class:`~repro.engine.context.ExecutionContext`) and is what
:class:`~repro.core.rknnt.RkNNTProcessor` calls — once per query, against
its shared context, for both single and batch workloads.
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.core.knn import count_routes_within_sq, query_distance_sq
from repro.core.result import RkNNTResult
from repro.core.semantics import Semantics
from repro.core.stats import QueryStatistics
from repro.engine.context import ExecutionContext
from repro.engine.filterset import FilterSet
from repro.engine.plan import (
    TRAVERSAL_AUTO,
    TRAVERSAL_NODE,
    QueryPlan,
    resolve_traversal,
)
from repro.engine.resilience import Deadline
from repro.geometry import kernels
from repro.geometry.bbox import BoundingBox
from repro.geometry.halfspace import filtering_space_contains_bbox
from repro.geometry.kernels import BACKEND_NUMPY, resolve_backend
from repro.geometry.voronoi import voronoi_prunes_bbox
from repro.index.rtree import RTreeEntry, RTreeNode
from repro.index.transition_index import TransitionEntry

QueryPoints = Sequence[Sequence[float]]
Candidate = Tuple[Tuple[float, float], TransitionEntry]
ConfirmedEndpoints = Dict[int, Set[str]]


class QueryExecutor:
    """Executes one RkNNT query as a filter → prune → verify pipeline.

    Parameters
    ----------
    context:
        Shared per-dataset execution state (indexes plus caches).
    k:
        The ``k`` of the reverse k nearest neighbour query.
    use_voronoi:
        Enable the Voronoi per-route filtering optimisation (Section 5.1).
    exclude_route_ids:
        Routes that must not count against candidates (used when the query is
        an existing route still present in the index).
    backend:
        Geometry-kernel backend (``"auto"`` / ``"numpy"`` / ``"python"``).
    filter_traversal:
        RR-tree filter-phase traversal style: ``"block"`` (default via
        ``"auto"``) expands all children of the best node in one kernel
        call; ``"node"`` is the original node-at-a-time heap loop.  The two
        make identical decisions (same answers, same traversal counters).
    deadline:
        Optional :class:`~repro.engine.resilience.Deadline` checked at the
        pipeline's stage boundaries.  Deadlines only ever *raise*
        (:class:`~repro.engine.resilience.DeadlineExceeded`) — a query that
        completes within its budget is untouched by them.
    """

    def __init__(
        self,
        context: ExecutionContext,
        k: int,
        use_voronoi: bool = False,
        exclude_route_ids: Optional[Iterable[int]] = None,
        backend: str = "python",
        filter_traversal: str = TRAVERSAL_AUTO,
        deadline: Optional[Deadline] = None,
    ):
        if k <= 0:
            raise ValueError("k must be positive")
        self.context = context
        self.k = k
        self.use_voronoi = use_voronoi
        self.excluded: FrozenSet[int] = frozenset(exclude_route_ids or ())
        self.backend = resolve_backend(backend)
        self.filter_traversal = resolve_traversal(filter_traversal)
        self.deadline = deadline
        self.stats = QueryStatistics()
        self.filter_set = FilterSet()
        self.refine_nodes: List[RTreeNode] = []

    # ------------------------------------------------------------------
    # Algorithm 3: IsFiltered
    # ------------------------------------------------------------------
    def is_filtered(self, box: BoundingBox, query_points: QueryPoints) -> bool:
        """True when at least ``k`` distinct routes provably dominate ``box``."""
        if self.backend == BACKEND_NUMPY:
            query = kernels.pack_points(
                [(float(p[0]), float(p[1])) for p in query_points]
            )
            return self._filtered_mask([box.as_tuple()], query)[0]
        return self._is_filtered_scalar(box, query_points)

    def _is_filtered_scalar(
        self, box: BoundingBox, query_points: QueryPoints
    ) -> bool:
        """Scalar predicate: one box against the scalar geometry functions."""
        dominating: Set[int] = set()
        # Step 1: individual filter points, highest crossover degree first.
        for point, crossover in self.filter_set.points_by_crossover():
            if len(dominating) >= self.k:
                return True
            if crossover <= dominating:
                continue
            if filtering_space_contains_bbox(box, point, query_points):
                dominating.update(crossover - self.excluded)
        if len(dominating) >= self.k:
            return True
        # Step 2: whole filtering routes via the Voronoi filtering space.
        if self.use_voronoi:
            for route_id in self.filter_set.route_ids:
                if len(dominating) >= self.k:
                    return True
                if route_id in dominating or route_id in self.excluded:
                    continue
                route_points = self.filter_set.route_points(route_id)
                if len(route_points) < 2:
                    continue
                if voronoi_prunes_bbox(box, route_points, query_points):
                    dominating.add(route_id)
        return len(dominating) >= self.k

    def _filtered_mask(self, boxes, query) -> List[bool]:
        """Vectorized predicate: a whole block of boxes per kernel call.

        The half-plane truth tensor for all (box, filter point, query point)
        triples is evaluated in one numpy expression; only the set-union
        accounting (which routes dominate, did we reach ``k``) remains in
        Python, iterating the usually tiny number of surviving rows.  The
        Voronoi step is likewise batched *across boxes*: one kernel call per
        eligible route over the step-1 survivors, instead of one per
        (box, route) pair.  The union a box accumulates is order-independent,
        so the verdicts are identical to the per-box loop — the differential
        and block/node equivalence tests pin this down.
        """
        packed = self.filter_set.packed()
        if len(packed) == 0:
            return [False] * len(boxes)
        tensor = kernels.boxes_halfplane_tensor(boxes, packed.points, query)
        all_q = tensor.all(axis=2)
        results = [False] * len(boxes)
        undecided: List[int] = []
        partial: List[Set[int]] = []
        for index in range(len(boxes)):
            # Step 1: filter points whose filtering space contains the box.
            dominating: Set[int] = set()
            for row in _true_indices(all_q[index]):
                crossover = packed.crossovers[row]
                if crossover <= dominating:
                    continue
                dominating.update(crossover - self.excluded)
                if len(dominating) >= self.k:
                    break
            if len(dominating) >= self.k:
                results[index] = True
            elif self.use_voronoi and packed.route_rows:
                undecided.append(index)
                partial.append(dominating)
        if undecided:
            self._decide_boxes_voronoi(tensor, undecided, partial, packed, results)
        return results

    def _decide_boxes_voronoi(
        self, tensor, undecided, partial, packed, results
    ) -> None:
        """Step 2 for the boxes step 1 left short of ``k`` dominators.

        For each eligible route (≥ 2 filter points, not excluded) the Voronoi
        domination verdict is computed for *all* still-undecided boxes in one
        kernel call; the per-box set accounting then consumes the verdict
        vector.  A box drops out of ``live`` as soon as it reaches ``k``.
        """
        sub = tensor[undecided]
        live = list(range(len(undecided)))
        for route_id, rows in packed.route_rows.items():
            if not live:
                return
            if len(rows) < 2 or route_id in self.excluded:
                continue
            verdicts = kernels.routes_dominate_boxes(sub, rows)
            still: List[int] = []
            for pos in live:
                if verdicts[pos]:
                    dominating = partial[pos]
                    dominating.add(route_id)
                    if len(dominating) >= self.k:
                        results[undecided[pos]] = True
                        continue
                still.append(pos)
            live = still

    # ------------------------------------------------------------------
    # Algorithm 2: FilterRoute
    # ------------------------------------------------------------------
    def filter_routes(self, query_points: QueryPoints) -> None:
        """Traverse the RR-tree, building the filter set and the refine set.

        Two traversal styles are implemented.  Both are best-first heaps and
        make *identical* decisions (same filter set, same pruned nodes, same
        traversal counters — ``tests/test_engine_blocks.py`` asserts this):

        * ``"node"`` — the original loop: pop an item, filter-test it, push
          all children.  One single-box predicate call per popped node.
        * ``"block"`` — block expansion: when the best node is expanded, all
          of its children are scored *and* filter-tested in one kernel call;
          only the survivors are pushed.  A pushed survivor is re-tested at
          its own pop only when the filter set grew in between (tracked via
          :attr:`FilterSet.generation`) — the predicate is monotone in the
          filter set, so an unchanged set cannot flip the earlier verdict,
          and a grown set re-tests exactly when the node-at-a-time loop
          would have tested with more information.
        """
        if self.filter_traversal == TRAVERSAL_NODE:
            self._filter_routes_node(query_points)
        else:
            self._filter_routes_block(query_points)

    def _filter_routes_node(self, query_points: QueryPoints) -> None:
        """Node-at-a-time traversal (the original engine loop)."""
        tree = self.context.route_index.tree
        if len(tree) == 0 or tree.root.bbox is None:
            return
        normalised = [(float(p[0]), float(p[1])) for p in query_points]
        query = self._pack_query(normalised)
        counter = itertools.count()
        heap: List[Tuple[float, int, object]] = [
            (
                tree.root.bbox.min_dist_sq_to_query(normalised),
                next(counter),
                tree.root,
            )
        ]
        while heap:
            _, _, item = heapq.heappop(heap)
            if isinstance(item, RTreeNode):
                self.stats.route_nodes_visited += 1
                assert item.bbox is not None
                if self._filtered_boxes([item.bbox.as_tuple()], query, normalised)[0]:
                    # Keep the pruned node for the verification phase (its
                    # NList supplies whole sets of closer routes at once).
                    self.refine_nodes.append(item)
                    self.stats.nodes_pruned += 1
                    continue
                for child, distance in zip(
                    item.children, self._child_distances(item, query, normalised)
                ):
                    heapq.heappush(heap, (float(distance), next(counter), child))
            else:
                assert isinstance(item, RTreeEntry)
                crossover = frozenset(item.payload) - self.excluded
                if not crossover:
                    continue
                self.filter_set.add(item.point, crossover)
                self.stats.filter_points += 1

    def _filter_routes_block(self, query_points: QueryPoints) -> None:
        """Block-expansion traversal: whole child blocks per kernel call."""
        tree = self.context.route_index.tree
        if len(tree) == 0 or tree.root.bbox is None:
            return
        normalised = [(float(p[0]), float(p[1])) for p in query_points]
        query = self._pack_query(normalised)
        counter = itertools.count()
        # Heap items carry the filter-set generation their push-time filter
        # test ran against (-1 = never tested: the root, and leaf entries).
        heap: List[Tuple[float, int, object, int]] = [
            (
                tree.root.bbox.min_dist_sq_to_query(normalised),
                next(counter),
                tree.root,
                -1,
            )
        ]
        while heap:
            _, _, item, tested_generation = heapq.heappop(heap)
            if isinstance(item, RTreeNode):
                self.stats.route_nodes_visited += 1
                if tested_generation != self.filter_set.generation:
                    assert item.bbox is not None
                    if self._filtered_boxes(
                        [item.bbox.as_tuple()], query, normalised
                    )[0]:
                        self.refine_nodes.append(item)
                        self.stats.nodes_pruned += 1
                        continue
                self._expand_route_node(item, query, normalised, counter, heap)
            else:
                assert isinstance(item, RTreeEntry)
                crossover = frozenset(item.payload) - self.excluded
                if not crossover:
                    continue
                self.filter_set.add(item.point, crossover)
                self.stats.filter_points += 1

    def _expand_route_node(
        self, node: RTreeNode, query, normalised, counter, heap
    ) -> None:
        """Score, filter-test and push all children of ``node`` as one block."""
        distances = self._child_distances(node, query, normalised)
        if node.is_leaf:
            # Leaf entries are never filter-tested (they *become* filter
            # points when popped); only their ordering keys are needed.
            for child, distance in zip(node.children, distances):
                heapq.heappush(heap, (float(distance), next(counter), child, -1))
            return
        mask = self._filtered_boxes(self._node_boxes(node), query, normalised)
        generation = self.filter_set.generation
        for child, distance, filtered in zip(node.children, distances, mask):
            assert isinstance(child, RTreeNode)
            if filtered:
                # Pruned at expansion time: account for it exactly as its
                # own node-at-a-time pop would have (visited + pruned), and
                # keep it for the verification phase.
                self.stats.route_nodes_visited += 1
                self.refine_nodes.append(child)
                self.stats.nodes_pruned += 1
                continue
            heapq.heappush(
                heap, (float(distance), next(counter), child, generation)
            )

    # ------------------------------------------------------------------
    # Algorithm 4: PruneTransition
    # ------------------------------------------------------------------
    def prune_transitions(self, query_points: QueryPoints) -> List[Candidate]:
        """Traverse the TR-tree, returning the candidate endpoints.

        The filtering set is frozen by the time this runs, so pruning
        decisions are order-independent: children of a node are tested as
        one block per kernel call, and pruned subtrees are never descended.
        """
        candidates: List[Candidate] = []
        tree = self.context.transition_index.tree
        if len(tree) == 0 or tree.root.bbox is None:
            return candidates
        normalised = [(float(p[0]), float(p[1])) for p in query_points]
        query = self._pack_query(normalised)

        self.stats.transition_nodes_visited += 1
        if self._filtered_boxes([tree.root.bbox.as_tuple()], query, normalised)[0]:
            self.stats.nodes_pruned += 1
            return candidates

        stack: List[RTreeNode] = [tree.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                mask = self._filtered_boxes(self._node_boxes(node), query, normalised)
                for entry, filtered in zip(node.children, mask):
                    if filtered:
                        continue
                    assert isinstance(entry, RTreeEntry)
                    for tag in entry.payload:
                        candidates.append((entry.point, tag))
            else:
                mask = self._filtered_boxes(self._node_boxes(node), query, normalised)
                for child, filtered in zip(node.children, mask):
                    assert isinstance(child, RTreeNode)
                    # Every examined node counts as visited (pruned ones
                    # too), matching the filter phase and the seed's
                    # popped-node accounting.
                    self.stats.transition_nodes_visited += 1
                    if filtered:
                        self.stats.nodes_pruned += 1
                        continue
                    stack.append(child)
        self.stats.candidates += len(candidates)
        return candidates

    def _filtered_boxes(self, boxes, query, query_points) -> List[bool]:
        """Backend dispatch for a block of box tuples."""
        if self.backend == BACKEND_NUMPY:
            return self._filtered_mask(boxes, query)
        return [
            self._is_filtered_scalar(BoundingBox(*box), query_points)
            for box in boxes
        ]

    def _node_boxes(self, node: RTreeNode):
        """Child boxes of ``node`` in the backend's block representation.

        The numpy backend consumes the node's cached packed array (leaf
        entries contribute degenerate boxes, exactly what the pruning tests
        expect; shared-memory arena workers get these caches pre-attached).
        The scalar backend keeps plain tuples so no numpy machinery is
        touched on its path.
        """
        if self.backend == BACKEND_NUMPY:
            return node.packed_child_boxes()
        return node.child_box_tuples()

    def _pack_query(self, normalised):
        """Query points in the representation the backend consumes.

        The scalar backend keeps the plain tuple list so that no kernel
        (and hence no numpy machinery) is touched on its path.
        """
        if self.backend == BACKEND_NUMPY:
            return kernels.pack_points(normalised)
        return normalised

    def _child_distances(self, node: RTreeNode, query, normalised):
        """Squared MinDist of every child of ``node`` to the query.

        On the numpy backend one kernel call orders the whole child block;
        the scalar backend walks the children exactly as the seed did.
        """
        if self.backend == BACKEND_NUMPY:
            return kernels.boxes_min_dist_sq_to_query(
                node.packed_child_boxes(), query
            )
        distances = []
        for child in node.children:
            if isinstance(child, RTreeNode):
                assert child.bbox is not None
                distances.append(child.bbox.min_dist_sq_to_query(normalised))
            else:
                distances.append(query_distance_sq(child.point, normalised))
        return distances

    # ------------------------------------------------------------------
    # Section 4.2.3: verification
    # ------------------------------------------------------------------
    def verify(
        self, query_points: QueryPoints, candidates: List[Candidate]
    ) -> ConfirmedEndpoints:
        """Exactly verify each candidate endpoint.

        A candidate endpoint is confirmed when fewer than ``k`` distinct
        routes are strictly closer to it than the query.  The scalar backend
        counts through the RR-tree with the NList shortcut — which reads
        each node's packed sorted-id union, a shared-memory NList block
        slice on attached workers (see :mod:`repro.engine.columnar`); the
        numpy backend reduces the context's flattened route matrix — both
        compare the same squared distances, so the decisions coincide
        exactly.
        """
        confirmed: ConfirmedEndpoints = {}
        if not candidates:
            return confirmed
        if self.backend == BACKEND_NUMPY:
            matrix = self.context.route_matrix()
            points = kernels.pack_points([point for point, _ in candidates])
            thresholds = kernels.points_min_dist_sq_to_query(
                points,
                kernels.pack_points(
                    [(float(p[0]), float(p[1])) for p in query_points]
                ),
            )
            # The route matrix is chunked by route blocks (each route lives
            # in exactly one block), so per-block closer-route counts sum to
            # the global distinct-route count.
            counts = None
            for block in matrix.blocks:
                block_counts = kernels.count_closer_routes(
                    points,
                    thresholds,
                    block.points,
                    block.offsets,
                    excluded_columns=block.excluded_columns(self.excluded),
                )
                counts = (
                    block_counts if counts is None else counts + block_counts
                )
            if counts is None:
                counts = [0] * len(candidates)
            for (point, tag), closer in zip(candidates, counts):
                if closer < self.k:
                    confirmed.setdefault(tag.transition_id, set()).add(
                        tag.endpoint
                    )
                    self.stats.confirmed_points += 1
            return confirmed
        for point, tag in candidates:
            threshold_sq = query_distance_sq(point, query_points)
            closer = count_routes_within_sq(
                self.context.route_index,
                point,
                threshold_sq,
                stop_at=self.k,
                exclude_route_ids=set(self.excluded),
                backend=self.backend,
            )
            if closer < self.k:
                confirmed.setdefault(tag.transition_id, set()).add(tag.endpoint)
                self.stats.confirmed_points += 1
        return confirmed

    # ------------------------------------------------------------------
    # Algorithm 1: the full pipeline
    # ------------------------------------------------------------------
    def run(self, query_points: QueryPoints) -> ConfirmedEndpoints:
        """Execute filter → prune → verify and return confirmed endpoints."""
        query = [(float(p[0]), float(p[1])) for p in query_points]
        if not query:
            raise ValueError("query must contain at least one point")

        started = time.perf_counter()
        if self.deadline is not None:
            self.deadline.check("filter stage")
        self.filter_routes(query)
        if self.deadline is not None:
            self.deadline.check("prune stage")
        candidates = self.prune_transitions(query)
        self.stats.filtering_seconds += time.perf_counter() - started

        started = time.perf_counter()
        if self.deadline is not None:
            self.deadline.check("verify stage")
        confirmed = self.verify(query, candidates)
        self.stats.verification_seconds += time.perf_counter() - started
        return confirmed


def _true_indices(mask) -> Iterable[int]:
    """Indices of True entries, for either a numpy mask or a plain list."""
    if hasattr(mask, "nonzero"):
        return mask.nonzero()[0].tolist()
    return [index for index, value in enumerate(mask) if value]


# ----------------------------------------------------------------------
# Strategy layer: whole queries (and batches) against a context
# ----------------------------------------------------------------------
def run_stages(
    context: ExecutionContext,
    query_points: QueryPoints,
    k: int,
    plan: QueryPlan,
    exclude_route_ids: Optional[Iterable[int]] = None,
    deadline: Optional[Deadline] = None,
) -> Tuple[ConfirmedEndpoints, QueryStatistics]:
    """Run one query under ``plan``; returns (confirmed endpoints, stats)."""
    plan = plan.resolved()
    excluded = frozenset(exclude_route_ids or ())
    if not plan.decompose:
        executor = QueryExecutor(
            context,
            k,
            use_voronoi=plan.use_voronoi,
            exclude_route_ids=excluded,
            backend=plan.backend,
            filter_traversal=plan.filter_traversal,
            deadline=deadline,
        )
        return executor.run(query_points), executor.stats
    return _run_decomposed(context, query_points, k, plan, excluded, deadline)


def _run_decomposed(
    context: ExecutionContext,
    query_points: QueryPoints,
    k: int,
    plan: QueryPlan,
    excluded: FrozenSet[int],
    deadline: Optional[Deadline] = None,
) -> Tuple[ConfirmedEndpoints, QueryStatistics]:
    """Divide & conquer: one single-point sub-query per query point (Lemma 3).

    Sub-query statistics are *summed* into the aggregate (every counter and
    both phase timings), so the parent result reports the full cost of all
    sub-queries.  Memoised sub-queries contribute only to ``subqueries`` —
    no traversal work happened for them.
    """
    points = [(float(p[0]), float(p[1])) for p in query_points]
    if not points:
        raise ValueError("query must contain at least one point")

    aggregate = QueryStatistics(subqueries=0)
    confirmed: ConfirmedEndpoints = {}
    for point in points:
        if deadline is not None:
            deadline.check("sub-query")
        key = (point, k, excluded, plan.use_voronoi)
        cached = (
            context.subquery_lookup(key) if plan.share_subquery_cache else None
        )
        if cached is None:
            executor = QueryExecutor(
                context,
                k,
                use_voronoi=plan.use_voronoi,
                exclude_route_ids=excluded,
                backend=plan.backend,
                filter_traversal=plan.filter_traversal,
                deadline=deadline,
            )
            sub_confirmed = executor.run([point])
            aggregate.merge(executor.stats)
            if plan.share_subquery_cache:
                context.subquery_store(
                    key,
                    {
                        transition_id: frozenset(endpoints)
                        for transition_id, endpoints in sub_confirmed.items()
                    },
                )
        else:
            sub_confirmed = cached
            aggregate.subqueries += 1
        for transition_id, endpoints in sub_confirmed.items():
            confirmed.setdefault(transition_id, set()).update(endpoints)
    return confirmed, aggregate


def execute(
    context: ExecutionContext,
    query_points: QueryPoints,
    k: int,
    plan: QueryPlan,
    semantics: Union[Semantics, str],
    exclude_route_ids: Optional[Iterable[int]] = None,
    deadline: Optional[Deadline] = None,
) -> RkNNTResult:
    """Answer one RkNNT query under ``plan`` and wrap it in a result.

    Batch workloads simply call this once per query against a shared
    context (that is all :meth:`~repro.core.rknnt.RkNNTProcessor
    .query_batch` does — the processor layer owns per-query concerns such
    as a Route query excluding itself, so no separate engine-level batch
    entry point exists).  ``deadline`` is checked between pipeline stages
    and between divide & conquer sub-queries; on expiry the query raises
    :class:`~repro.engine.resilience.DeadlineExceeded` instead of
    returning a partial answer.
    """
    semantics = Semantics.coerce(semantics)
    confirmed, stats = run_stages(
        context, query_points, k, plan, exclude_route_ids, deadline=deadline
    )
    return RkNNTResult.from_confirmed(confirmed, semantics, k, stats)
