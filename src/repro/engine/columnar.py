"""Columnar dataset core: packed array encodings of the index structures.

The serving layer ships one pickled :class:`~repro.engine.context
.ExecutionContext` to every worker.  Before this module existed, that
pickle was an *object graph*: ``Route``/``Transition`` instances,
R-tree nodes, per-entry payload ``frozenset``\\ s, the PList dict of sets —
megabytes of Python object headers for what is, structurally, a handful of
flat arrays.  The columnar core re-encodes every dataset-sized structure
as a structure of arrays:

====================  =====================================================
structure             columns
====================  =====================================================
route dataset         route ids (i32) · point offsets (i32) · points (f64)
transition dataset    transition ids (i32) · endpoint coords (f64)
R-tree (RR and TR)    preorder child counts + leaf flags (i32) · leaf
                      entry points (f64) · payload offsets (i32) · payload
                      values (i32: route ids, or ``(transition id,
                      endpoint code)`` tag pairs)
PList                 point locations (f64, sorted lexicographically) ·
                      offsets (i32) · crossover route ids (i32, sorted)
NList                 per-node offsets (i32, preorder) · route ids (i32,
                      sorted)
====================  =====================================================

Every id column is **sorted**, so two encodings of the same logical state
are identical element-wise and the resulting pickles are byte-deterministic
across runs and interpreters — unlike hash-ordered ``set`` iteration, which
the columnar encoders replace everywhere.

Uses.  The indexes pickle themselves through ``to_columns()`` /
``from_columns()`` (gated by ``RKNNT_COLUMNAR``; see
:mod:`repro.index.route_index` / :mod:`repro.index.transition_index`), which
shrinks serving-pool reseed payloads severalfold and makes the pickle
identical under the ``fork`` and ``spawn`` start methods.  The
shared-memory arena (:mod:`repro.engine.arena`) publishes the PList and
NList columns into its segment alongside the route-matrix and box blocks,
and attached workers install read-only views in place of their private
copies — the filter/verify stages then read NList unions and PList
crossover sets straight out of the shared blocks through the offset-table
gather / sorted-membership kernels in :mod:`repro.geometry.kernels`.

Determinism.  Decoding reproduces the exact tree *structure* (preorder
child counts drive the rebuild), the exact entry coordinates, and the
exact payload sets, so a decoded index answers every query identically to
the object-graph original — the differential tests in
``tests/test_columnar.py`` assert this per method × semantics × backend.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.geometry import kernels
from repro.index.rtree import RTree, RTreeEntry, RTreeNode
from repro.index.transition_index import DESTINATION, ORIGIN, TransitionEntry
from repro.model.dataset import RouteDataset, TransitionDataset
from repro.model.route import Route
from repro.model.transition import Transition

#: ``RKNNT_COLUMNAR`` — ``0``/``off`` falls back to the legacy object-graph
#: pickles of the indexes; anything else (or unset) pickles columnar.
COLUMNAR_ENV = "RKNNT_COLUMNAR"

#: Payload kinds of :class:`TreeColumns`.
PAYLOAD_ROUTE = "route"  # RR-tree: payload = set of route ids
PAYLOAD_TAG = "tag"  # TR-tree: payload = set of (transition id, endpoint)

#: Endpoint labels as int32 codes (tag pairs are ``(transition_id, code)``).
_ENDPOINT_CODE = {ORIGIN: 0, DESTINATION: 1}
_ENDPOINT_LABEL = (ORIGIN, DESTINATION)


def columnar_enabled() -> bool:
    """True unless ``RKNNT_COLUMNAR`` disables columnar index pickling."""
    raw = os.environ.get(COLUMNAR_ENV, "").strip().lower()
    return raw not in ("0", "off", "false", "no")


def walk_nodes(tree: RTree) -> Iterator[RTreeNode]:
    """Deterministic preorder over a tree's nodes.

    Identical on both sides of a pickle *and* of a columnar decode (the
    decoder rebuilds the exact structure), which is what lets the NList
    columns and the arena box blocks be addressed positionally, without any
    per-node metadata.
    """
    stack: List[RTreeNode] = [tree.root]
    while stack:
        node = stack.pop()
        yield node
        if not node.is_leaf:
            stack.extend(reversed(node.children))  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# R-tree structure + leaf payloads
# ----------------------------------------------------------------------
@dataclass(eq=False)
class TreeColumns:
    """One R-tree as packed columns (structure, entry points, payloads).

    ``child_counts``/``leaf_flags`` are per node in preorder;
    ``entry_points`` holds the leaf-entry coordinates in the same preorder;
    ``payload_offsets`` is an offset table over ``payload_values`` with one
    row per leaf entry (values are route ids for ``payload_kind="route"``,
    flattened ``(transition_id, endpoint_code)`` pairs for ``"tag"``).
    """

    payload_kind: str
    max_entries: int
    min_entries: int
    track_payload_union: bool
    size: int
    child_counts: Any
    leaf_flags: Any
    entry_points: Any
    payload_offsets: Any
    payload_values: Any

    @property
    def node_count(self) -> int:
        return len(self.child_counts)

    @property
    def entry_count(self) -> int:
        return max(0, len(self.payload_offsets) - 1)


def _encode_route_payload(payload: Iterable[Any]) -> List[int]:
    return sorted(int(route_id) for route_id in payload)


def _decode_route_payload(values) -> Any:
    return frozenset(kernels.id_list(values))


def _encode_tag_payload(payload: Iterable[TransitionEntry]) -> List[int]:
    flat: List[int] = []
    for transition_id, code in sorted(
        (int(tag.transition_id), _ENDPOINT_CODE[tag.endpoint]) for tag in payload
    ):
        flat.append(transition_id)
        flat.append(code)
    return flat


def _decode_tag_payload(values) -> Any:
    flat = kernels.id_list(values)
    return frozenset(
        TransitionEntry(flat[i], _ENDPOINT_LABEL[flat[i + 1]])
        for i in range(0, len(flat), 2)
    )


_PAYLOAD_CODECS = {
    PAYLOAD_ROUTE: (_encode_route_payload, _decode_route_payload),
    PAYLOAD_TAG: (_encode_tag_payload, _decode_tag_payload),
}


def encode_tree(tree: RTree, payload_kind: str) -> TreeColumns:
    """Pack an R-tree into :class:`TreeColumns` (preorder, leaf entries)."""
    encoder, _ = _PAYLOAD_CODECS[payload_kind]
    child_counts: List[int] = []
    leaf_flags: List[int] = []
    entry_points: List[Tuple[float, float]] = []
    payload_offsets: List[int] = [0]
    payload_values: List[int] = []
    for node in walk_nodes(tree):
        child_counts.append(len(node.children))
        leaf_flags.append(1 if node.is_leaf else 0)
        if node.is_leaf:
            for entry in node.children:
                assert isinstance(entry, RTreeEntry)
                entry_points.append(entry.point)
                payload_values.extend(encoder(entry.payload))
                payload_offsets.append(len(payload_values))
    return TreeColumns(
        payload_kind=payload_kind,
        max_entries=tree.max_entries,
        min_entries=tree.min_entries,
        track_payload_union=tree.track_payload_union,
        size=len(tree),
        child_counts=kernels.pack_i32(child_counts),
        leaf_flags=kernels.pack_i32(leaf_flags),
        entry_points=kernels.pack_points(entry_points),
        payload_offsets=kernels.pack_i32(payload_offsets),
        payload_values=kernels.pack_i32(payload_values),
    )


def decode_tree(columns: TreeColumns) -> RTree:
    """Rebuild an R-tree from :class:`TreeColumns`.

    The reconstruction is structure-exact: the preorder child counts drive
    the same depth-first, left-to-right build that :func:`walk_nodes`
    enumerates, so node ``i`` of the decoded tree is node ``i`` of the
    encoded one.  Bounding boxes are recomputed bottom-up from the same
    coordinates in the same order (bitwise identical); payload unions are
    left lazy (see :attr:`repro.index.rtree.RTreeNode.payload_union`) so a
    decode costs no set-building up front.
    """
    _, decoder = _PAYLOAD_CODECS[columns.payload_kind]
    tree = RTree(
        max_entries=columns.max_entries,
        min_entries=columns.min_entries,
        track_payload_union=columns.track_payload_union,
    )
    tree._size = columns.size
    child_counts = columns.child_counts
    leaf_flags = columns.leaf_flags
    entry_points = columns.entry_points
    payload_offsets = columns.payload_offsets
    payload_values = columns.payload_values
    cursor = {"node": 0, "entry": 0}

    def build() -> RTreeNode:
        index = cursor["node"]
        cursor["node"] = index + 1
        node = RTreeNode(is_leaf=bool(leaf_flags[index]))
        count = int(child_counts[index])
        if node.is_leaf:
            for _ in range(count):
                entry_index = cursor["entry"]
                cursor["entry"] = entry_index + 1
                point = entry_points[entry_index]
                payload = decoder(
                    kernels.gather_row(payload_values, payload_offsets, entry_index)
                )
                node.children.append(
                    RTreeEntry((float(point[0]), float(point[1])), payload)
                )
        else:
            for _ in range(count):
                child = build()
                child.parent = node
                node.children.append(child)
        node.recompute_bbox()
        if columns.track_payload_union:
            node._payload_union = None  # materialised lazily on first read
        return node

    root = build()
    if cursor["node"] != columns.node_count or cursor["entry"] != columns.entry_count:
        raise ValueError(
            f"tree columns are inconsistent: decoded {cursor['node']} nodes / "
            f"{cursor['entry']} entries, encoded {columns.node_count} / "
            f"{columns.entry_count}"
        )
    root.parent = None
    tree.root = root
    return tree


# ----------------------------------------------------------------------
# PList (point location -> crossover route ids)
# ----------------------------------------------------------------------
@dataclass(eq=False)
class PListColumns:
    """The PList as sorted packed columns, readable without a dict.

    ``points`` is sorted lexicographically by ``(x, y)`` so lookups are a
    binary search (:func:`repro.geometry.kernels.lex_search_point`);
    ``route_ids`` holds each point's crossover set, sorted, addressed
    through ``offsets``.  A worker attached to a shared-memory arena holds
    these as read-only views of the segment.
    """

    points: Any
    offsets: Any
    route_ids: Any

    def __len__(self) -> int:
        return max(0, len(self.offsets) - 1)

    def row_of(self, key: Sequence[float]) -> int:
        return kernels.lex_search_point(self.points, float(key[0]), float(key[1]))

    def ids_at(self, row: int):
        return kernels.gather_row(self.route_ids, self.offsets, row)

    def crossover(self, key: Sequence[float]) -> frozenset:
        row = self.row_of(key)
        if row < 0:
            return frozenset()
        return frozenset(kernels.id_list(self.ids_at(row)))

    def degree(self, key: Sequence[float]) -> int:
        row = self.row_of(key)
        if row < 0:
            return 0
        return int(self.offsets[row + 1]) - int(self.offsets[row])

    def contains(self, key: Sequence[float]) -> bool:
        return self.row_of(key) >= 0

    def keys(self) -> Iterator[Tuple[float, float]]:
        for row in range(len(self)):
            point = self.points[row]
            yield (float(point[0]), float(point[1]))

    def items(self) -> Iterator[Tuple[Tuple[float, float], List[int]]]:
        for row in range(len(self)):
            point = self.points[row]
            key = (float(point[0]), float(point[1]))
            yield key, kernels.id_list(self.ids_at(row))


def encode_plist(
    sorted_items: Sequence[Tuple[Tuple[float, float], Sequence[int]]]
) -> PListColumns:
    """Pack ``(point, sorted route ids)`` items (pre-sorted by point)."""
    points: List[Tuple[float, float]] = []
    offsets: List[int] = [0]
    route_ids: List[int] = []
    for key, ids in sorted_items:
        points.append(key)
        route_ids.extend(int(route_id) for route_id in ids)
        offsets.append(len(route_ids))
    return PListColumns(
        points=kernels.pack_points(points),
        offsets=kernels.pack_i32(offsets),
        route_ids=kernels.pack_i32(route_ids),
    )


# ----------------------------------------------------------------------
# NList (per RR-tree node route-id unions)
# ----------------------------------------------------------------------
@dataclass(eq=False)
class NListColumns:
    """Per-node route-id unions, addressed by preorder node position."""

    offsets: Any
    route_ids: Any

    @property
    def node_count(self) -> int:
        return max(0, len(self.offsets) - 1)


def encode_nlist(tree: RTree) -> NListColumns:
    """Pack every node's payload union (sorted) in preorder."""
    offsets: List[int] = [0]
    route_ids: List[int] = []
    for node in walk_nodes(tree):
        route_ids.extend(sorted(int(route_id) for route_id in node.payload_union))
        offsets.append(len(route_ids))
    return NListColumns(
        offsets=kernels.pack_i32(offsets), route_ids=kernels.pack_i32(route_ids)
    )


def install_nlist(tree: RTree, columns: NListColumns) -> None:
    """Install NList columns as per-node ``packed_union`` slices.

    Raises when the column shape does not match the tree's preorder walk —
    callers treat that as "no columns" and keep the lazily-built unions,
    never wrong ones.  Validation runs *before* the first node is touched
    (two cheap walks), so a rejected install leaves the tree unchanged and
    a worker that falls back never serves from half-installed columns.
    """
    count = sum(1 for _ in walk_nodes(tree))
    if count != columns.node_count:
        raise ValueError(
            f"NList columns cover {columns.node_count} nodes, "
            f"but the tree has {count}"
        )
    for index, node in enumerate(walk_nodes(tree)):
        node.packed_union = kernels.gather_row(
            columns.route_ids, columns.offsets, index
        )


# ----------------------------------------------------------------------
# Datasets
# ----------------------------------------------------------------------
@dataclass(eq=False)
class RouteColumns:
    """A :class:`~repro.model.dataset.RouteDataset` as packed columns."""

    ids: Any
    offsets: Any
    points: Any
    names: Tuple[Optional[str], ...]
    version: int


def encode_routes(dataset: RouteDataset) -> RouteColumns:
    ids: List[int] = []
    offsets: List[int] = [0]
    flat: List[Tuple[float, float]] = []
    names: List[Optional[str]] = []
    for route in dataset:
        ids.append(route.route_id)
        names.append(route.name)
        flat.extend((point.x, point.y) for point in route.points)
        offsets.append(len(flat))
    return RouteColumns(
        ids=kernels.pack_i32(ids),
        offsets=kernels.pack_i32(offsets),
        points=kernels.pack_points(flat),
        names=tuple(names),
        version=dataset.version,
    )


def decode_routes(columns: RouteColumns) -> RouteDataset:
    dataset = RouteDataset()
    for index, route_id in enumerate(kernels.id_list(columns.ids)):
        points = kernels.gather_row(columns.points, columns.offsets, index)
        dataset.add(
            Route(
                route_id,
                [(float(p[0]), float(p[1])) for p in points],
                name=columns.names[index],
            )
        )
    dataset.version = columns.version
    return dataset


@dataclass(eq=False)
class TransitionColumns:
    """A :class:`~repro.model.dataset.TransitionDataset` as packed columns."""

    ids: Any
    coords: Any  # (T, 4) float64: origin x, origin y, destination x, y
    timestamps: Tuple[Optional[float], ...]
    version: int


def encode_transitions(dataset: TransitionDataset) -> TransitionColumns:
    ids: List[int] = []
    coords: List[Tuple[float, float, float, float]] = []
    timestamps: List[Optional[float]] = []
    for transition in dataset:
        ids.append(transition.transition_id)
        coords.append(
            (
                transition.origin.x,
                transition.origin.y,
                transition.destination.x,
                transition.destination.y,
            )
        )
        timestamps.append(transition.timestamp)
    return TransitionColumns(
        ids=kernels.pack_i32(ids),
        coords=kernels.pack_boxes(coords),
        timestamps=tuple(timestamps),
        version=dataset.version,
    )


def decode_transitions(columns: TransitionColumns) -> TransitionDataset:
    dataset = TransitionDataset()
    for index, transition_id in enumerate(kernels.id_list(columns.ids)):
        row = columns.coords[index]
        dataset.add(
            Transition(
                transition_id,
                (float(row[0]), float(row[1])),
                (float(row[2]), float(row[3])),
                timestamp=columns.timestamps[index],
            )
        )
    dataset.version = columns.version
    return dataset


# ----------------------------------------------------------------------
# Whole indexes (the pickling boundary)
# ----------------------------------------------------------------------
@dataclass(eq=False)
class RouteIndexColumns:
    """Everything a :class:`~repro.index.route_index.RouteIndex` pickles."""

    routes: RouteColumns
    tree: TreeColumns
    plist: PListColumns
    nlist: NListColumns
    version: int
    max_entries: int
    excluded: Tuple[int, ...]


def encode_route_index(index) -> RouteIndexColumns:
    return RouteIndexColumns(
        routes=encode_routes(index.routes),
        tree=encode_tree(index.tree, PAYLOAD_ROUTE),
        plist=index.plist.to_columns(),
        nlist=encode_nlist(index.tree),
        version=index.version,
        max_entries=index.max_entries,
        excluded=tuple(sorted(index.excluded_route_ids)),
    )


@dataclass(eq=False)
class TransitionIndexColumns:
    """Everything a :class:`~repro.index.transition_index.TransitionIndex`
    pickles (listeners are process-local and never travel)."""

    transitions: TransitionColumns
    tree: TreeColumns
    version: int
    max_entries: int


def encode_transition_index(index) -> TransitionIndexColumns:
    return TransitionIndexColumns(
        transitions=encode_transitions(index.transitions),
        tree=encode_tree(index.tree, PAYLOAD_TAG),
        version=index.version,
        max_entries=index.max_entries,
    )
