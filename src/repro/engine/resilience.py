"""Resilience primitives for the serving runtime.

The serving stack (:mod:`repro.engine.parallel`, the processor's
``serving_pool`` and the CLI ``serve`` loop) crosses process boundaries,
shares memory segments and replays delta logs — every one of those seams
can fail independently of query correctness.  This module collects the
*policy* half of surviving those failures; the mechanisms (reseed, replay,
serial fallback) stay where the state lives, in
:class:`~repro.engine.parallel.ShardedExecutor`.

* a typed error taxonomy rooted at :class:`RkNNTError`.  Every failure the
  runtime can recover from (or must surface) carries structured context —
  which shard, which attempt, which deadline — instead of a bare
  ``RuntimeError`` string.  The errors pickle losslessly across the
  worker → parent boundary (:func:`_rebuild_error`), so context attached
  in a pool worker survives ``future.result()`` re-raising it in the
  parent;
* :class:`Deadline` — a monotonic per-query/per-batch time budget.
  Checked between pipeline stages and between sub-queries, and used as the
  ``future.result`` timeout on the pool path, so a hung worker can never
  stall a caller past its budget;
* :class:`RetryPolicy` — bounded retries with exponential backoff and
  *decorrelated jitter* (each pause is drawn uniformly from ``[base,
  3 × previous]``, capped), the shape recommended for contended recovery
  because synchronized retry storms cannot form;
* :class:`AdmissionGate` — explicit backpressure.  In-flight task slots
  are bounded by ``RKNNT_QUEUE_LIMIT``; a batch that would overflow the
  bound while other work is in flight is rejected *immediately* with
  :class:`PoolSaturated` instead of buffering without bound;
* the environment knobs of the resilience runtime
  (:func:`max_reseeds`, :func:`default_deadline_ms`,
  :func:`default_queue_limit`).  Like every other tuning knob in the
  library, a mistyped value falls back to the default — it must never
  change answers or crash a query.

Degradation contract: when the pool path exhausts its reseed budget the
executor answers **in process** — the identical code path ``workers=0``
runs — so a degraded system returns bitwise-identical results at reduced
throughput.  ``tests/test_resilience.py`` asserts this differentially
under every injected fault.
"""

from __future__ import annotations

import os
import random
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, Optional, Tuple, Type

# ----------------------------------------------------------------------
# Environment knobs
# ----------------------------------------------------------------------
#: ``RKNNT_MAX_RESEEDS`` — consecutive pool failures (crash, corrupt sync
#: log, failed reseed) tolerated within one batch before the executor
#: degrades to in-process serial execution.  ``0`` degrades on the first
#: failure.
MAX_RESEEDS_ENV = "RKNNT_MAX_RESEEDS"
DEFAULT_MAX_RESEEDS = 3

#: ``RKNNT_DEADLINE_MS`` — ambient per-batch deadline applied when a call
#: does not pass ``deadline_ms`` explicitly.  Unset / ``0`` means no
#: deadline.
DEADLINE_ENV = "RKNNT_DEADLINE_MS"

#: ``RKNNT_QUEUE_LIMIT`` — bound on in-flight shard tasks per executor.
#: ``0`` (the default) means unbounded, restoring the pre-resilience
#: buffering behaviour.
QUEUE_LIMIT_ENV = "RKNNT_QUEUE_LIMIT"


def _env_number(
    name: str, default: float, minimum: float, cast: Callable[[str], float]
) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = cast(raw)
    except ValueError:
        return default
    if value < minimum:
        return default
    return value


def max_reseeds() -> int:
    """Reseed budget before degradation (``RKNNT_MAX_RESEEDS``, default 3)."""
    return int(_env_number(MAX_RESEEDS_ENV, DEFAULT_MAX_RESEEDS, 0, int))


def default_deadline_ms() -> Optional[float]:
    """Ambient deadline in ms (``RKNNT_DEADLINE_MS``), ``None`` when unset."""
    value = _env_number(DEADLINE_ENV, 0.0, 0.0, float)
    return value if value > 0 else None


def default_queue_limit() -> int:
    """In-flight task bound (``RKNNT_QUEUE_LIMIT``), ``0`` = unbounded."""
    return int(_env_number(QUEUE_LIMIT_ENV, 0, 0, int))


# ----------------------------------------------------------------------
# Error taxonomy
# ----------------------------------------------------------------------
def _rebuild_error(
    cls: Type["RkNNTError"], args: Tuple[Any, ...], state: Dict[str, Any]
) -> "RkNNTError":
    """Reconstruct a typed error on unpickle, context intact.

    The default ``BaseException`` reduction only round-trips ``args`` —
    structured context attached in a pool worker would silently vanish
    when ``future.result()`` re-raises the error in the parent.
    """
    error = cls.__new__(cls)
    error.args = args
    error.__dict__.update(state)
    return error


class RkNNTError(RuntimeError):
    """Base of every typed runtime failure.

    ``context`` carries structured key/value detail (shard index, attempt
    number, versions, …); it is rendered into ``str(error)`` and survives
    pickling across the worker → parent process boundary.

    ``wire_code`` is the *stable* machine-readable identifier the network
    protocol (:mod:`repro.engine.protocol`) puts in error replies.  Class
    names may be refactored; wire codes are a compatibility contract and
    must never change once shipped.
    """

    wire_code: str = "internal"

    def __init__(self, message: str, **context: Any):
        super().__init__(message)
        self.context: Dict[str, Any] = dict(context)

    def __reduce__(self):
        return (_rebuild_error, (type(self), self.args, self.__dict__.copy()))

    def __str__(self) -> str:
        base = super().__str__()
        if self.context:
            detail = ", ".join(
                f"{key}={value!r}" for key, value in sorted(self.context.items())
            )
            return f"{base} [{detail}]"
        return base


class WorkerCrashError(RkNNTError):
    """A pool worker died mid-task and the reseed budget is exhausted."""

    wire_code = "worker_crash"


class ReseedError(RkNNTError):
    """Re-seeding the pool (arena publish, context pickle, spawn) failed."""

    wire_code = "reseed_failed"


class SyncLogError(RkNNTError):
    """The delta-sync replay could not reproduce the parent's version —
    a gap or truncation in the shipped log.  Recoverable by reseeding."""

    wire_code = "sync_log_corrupt"


class ArenaAttachError(RkNNTError):
    """A worker failed to attach the shared-memory dataset arena.
    Recoverable in-place: the worker rebuilds its caches privately."""

    wire_code = "arena_attach_failed"


class StoreError(RkNNTError):
    """A persistent store file could not be written, opened or validated
    (missing file, truncated header, checksum mismatch, unsupported
    format version, numpy unavailable).  Recoverable exactly like
    :class:`ArenaAttachError`: the caller degrades to the pickle path
    and answers stay identical."""

    wire_code = "store_attach_failed"


class DeadlineExceeded(RkNNTError):
    """The query/batch ran past its :class:`Deadline`.  Never retried —
    retrying cannot make a missed budget reappear."""

    wire_code = "deadline_exceeded"


class PoolSaturated(RkNNTError):
    """Admission was refused: accepting the batch would overflow the
    bounded in-flight queue (``RKNNT_QUEUE_LIMIT``).  Explicit
    backpressure — the caller sheds load or retries later."""

    wire_code = "pool_saturated"


class UpdateStreamError(RkNNTError, ValueError):
    """A malformed line in a ``serve``/``watch`` update stream (bad op
    code, non-numeric id, truncated tuple).  The line is rejected and
    logged; serving continues."""

    wire_code = "bad_update"


def wire_code(error: BaseException) -> str:
    """Stable wire-facing code for *any* exception.

    Typed runtime errors carry their own ``wire_code``; everything else —
    a plain ``ValueError`` from request validation, an unexpected bug —
    collapses to ``"internal"`` so the protocol never leaks class names.
    """
    code = getattr(error, "wire_code", None)
    return code if isinstance(code, str) and code else "internal"


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------
class Deadline:
    """A monotonic time budget for one query or batch.

    Constructed from a millisecond budget; :meth:`check` raises
    :class:`DeadlineExceeded` once the budget is spent, :meth:`remaining`
    feeds ``future.result(timeout=…)`` on the pool path.  The clock is
    injectable so chaos tests can drive expiry deterministically.
    """

    __slots__ = ("budget_ms", "_clock", "_expires_at")

    def __init__(self, budget_ms: float, clock: Callable[[], float] = time.monotonic):
        if budget_ms <= 0:
            raise ValueError(f"deadline budget must be positive, got {budget_ms}")
        self.budget_ms = float(budget_ms)
        self._clock = clock
        self._expires_at = clock() + self.budget_ms / 1000.0

    @classmethod
    def from_ms(
        cls,
        deadline_ms: Optional[float],
        clock: Callable[[], float] = time.monotonic,
    ) -> Optional["Deadline"]:
        """``None``-propagating constructor: no budget, no deadline."""
        if deadline_ms is None:
            return None
        return cls(deadline_ms, clock=clock)

    def remaining(self) -> float:
        """Seconds left in the budget (may be negative once expired)."""
        return self._expires_at - self._clock()

    def expired(self) -> bool:
        return self.remaining() <= 0

    def check(self, what: str = "query") -> None:
        """Raise :class:`DeadlineExceeded` when the budget is spent."""
        remaining = self.remaining()
        if remaining <= 0:
            raise DeadlineExceeded(
                f"{what} exceeded its deadline",
                budget_ms=self.budget_ms,
                overrun_ms=round(-remaining * 1000.0, 3),
            )

    def __repr__(self) -> str:
        return f"Deadline(budget_ms={self.budget_ms}, remaining={self.remaining():.3f}s)"


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
class RetryPolicy:
    """Exponential backoff with decorrelated jitter.

    Each pause is drawn uniformly from ``[base, 3 × previous]`` and capped
    — successive failures back off roughly exponentially, while the
    jitter decorrelates concurrent retriers (no synchronized retry
    storms).  ``sleep`` is injectable so tests never actually wait, and
    the generator is seeded so a chaos run's pause schedule is
    reproducible.
    """

    def __init__(
        self,
        base_ms: float = 25.0,
        cap_ms: float = 2000.0,
        seed: Optional[int] = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if base_ms <= 0 or cap_ms < base_ms:
            raise ValueError(f"invalid backoff range [{base_ms}, {cap_ms}]")
        self.base_ms = float(base_ms)
        self.cap_ms = float(cap_ms)
        self.sleep = sleep
        self._rng = random.Random(seed)
        self._previous_ms = self.base_ms

    def reset(self) -> None:
        """Forget the escalation state (call after a successful attempt)."""
        self._previous_ms = self.base_ms

    def pause(self, deadline: Optional[Deadline] = None) -> float:
        """Sleep one backoff step; returns the pause actually taken (ms).

        The pause is clipped to the deadline's remaining budget — backing
        off must never be the reason a deadline is missed.
        """
        delay_ms = min(
            self.cap_ms, self._rng.uniform(self.base_ms, self._previous_ms * 3.0)
        )
        self._previous_ms = delay_ms
        if deadline is not None:
            delay_ms = min(delay_ms, max(0.0, deadline.remaining() * 1000.0))
        if delay_ms > 0:
            self.sleep(delay_ms / 1000.0)
        return delay_ms


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class AdmissionGate:
    """Bounded admission with explicit backpressure.

    Tracks in-flight task slots across every holder of one executor.  A
    request that would push the total past ``limit`` while other work is
    in flight raises :class:`PoolSaturated` immediately — callers shed
    load instead of queueing without bound.  A *lone* batch larger than
    the limit is admitted (rejecting it could never succeed); the
    executor then windows its submissions so no more than ``limit``
    futures are ever buffered at once.  ``limit <= 0`` disables the gate.
    """

    def __init__(self, limit: Optional[int] = None):
        self.limit = default_queue_limit() if limit is None else int(limit)
        self._lock = threading.Lock()
        self._in_flight = 0

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def acquire(self, count: int, what: str = "batch") -> None:
        with self._lock:
            if (
                self.limit > 0
                and self._in_flight > 0
                and self._in_flight + count > self.limit
            ):
                raise PoolSaturated(
                    f"{what} refused admission",
                    requested=count,
                    in_flight=self._in_flight,
                    limit=self.limit,
                )
            self._in_flight += count

    def release(self, count: int) -> None:
        with self._lock:
            self._in_flight = max(0, self._in_flight - count)

    @contextmanager
    def admitted(self, count: int, what: str = "batch") -> Iterator[None]:
        self.acquire(count, what)
        try:
            yield
        finally:
            self.release(count)

    def __repr__(self) -> str:
        return f"AdmissionGate(limit={self.limit}, in_flight={self.in_flight})"
