"""The filtering set ``S_filter`` (Section 4.2.1) with packed array views.

Moved here from ``repro.core.filtering`` (which re-exports it for backward
compatibility) so the execution engine can own the packed representation the
vectorized kernels consume without a circular import.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.geometry import kernels


class PackedFilterSet:
    """Array view of a :class:`FilterSet`, aligned with the crossover order.

    Attributes
    ----------
    points:
        Filter-point coordinates packed via :func:`repro.geometry.kernels
        .pack_points`, row ``i`` corresponding to the ``i``-th entry of
        ``FilterSet.points_by_crossover()``.
    crossovers:
        The crossover route set of each row, in the same order.
    route_rows:
        For each route id, the rows belonging to it (what the per-route
        Voronoi test consumes).
    """

    __slots__ = ("points", "crossovers", "route_rows")

    def __init__(
        self,
        points,
        crossovers: List[FrozenSet[int]],
        route_rows: Dict[int, List[int]],
    ):
        self.points = points
        self.crossovers = crossovers
        self.route_rows = route_rows

    def __len__(self) -> int:
        return len(self.crossovers)


class FilterSet:
    """The filtering set ``S_filter`` (Section 4.2.1).

    Two views are maintained, mirroring the paper's ``S_filter.P`` and
    ``S_filter.R``:

    * ``points`` — filter points sorted by decreasing crossover degree
      ``|C(r)|`` so that points shared by many routes are tried first;
    * ``routes`` — for each route id, the filter points belonging to it,
      which is what the Voronoi per-route pruning consumes.

    A third, lazily rebuilt view — :meth:`packed` — exposes the same data as
    packed coordinate arrays for the vectorized geometry kernels.
    """

    def __init__(self) -> None:
        self._points: List[Tuple[Tuple[float, float], FrozenSet[int]]] = []
        self._routes: Dict[int, List[Tuple[float, float]]] = {}
        self._seen: Set[Tuple[float, float]] = set()
        self._sorted = True
        self._packed: Optional[PackedFilterSet] = None
        #: Monotonic counter bumped whenever a point is actually added.  The
        #: block-expansion filter traversal uses it to skip re-testing a node
        #: whose push-time test already ran against the current set — the
        #: ``is_filtered`` predicate is monotone in the set, so an unchanged
        #: generation cannot flip an earlier "not filtered" verdict.
        self.generation = 0

    def add(self, point: Sequence[float], crossover_routes: FrozenSet[int]) -> None:
        """Add a filter point with its crossover route set ``C(r)``."""
        key = (float(point[0]), float(point[1]))
        if key in self._seen:
            return
        self._seen.add(key)
        self._points.append((key, crossover_routes))
        self._sorted = False
        self._packed = None
        self.generation += 1
        for route_id in crossover_routes:
            self._routes.setdefault(route_id, []).append(key)

    def points_by_crossover(
        self,
    ) -> List[Tuple[Tuple[float, float], FrozenSet[int]]]:
        """Filter points in decreasing order of ``|C(r)|``.

        Returns
        -------
        list of ((x, y), crossover_routes)
            Points shared by many routes come first, so the pruning
            predicates reach ``k`` dominating routes as early as possible.
        """
        if not self._sorted:
            self._points.sort(key=lambda item: -len(item[1]))
            self._sorted = True
        return self._points

    def packed(self) -> PackedFilterSet:
        """Packed array view aligned with :meth:`points_by_crossover`."""
        if self._packed is None:
            ordered = self.points_by_crossover()
            points = kernels.pack_points([point for point, _ in ordered])
            crossovers = [crossover for _, crossover in ordered]
            route_rows: Dict[int, List[int]] = {}
            for row, (_, crossover) in enumerate(ordered):
                for route_id in crossover:
                    route_rows.setdefault(route_id, []).append(row)
            self._packed = PackedFilterSet(points, crossovers, route_rows)
        return self._packed

    @property
    def route_ids(self) -> Set[int]:
        """Route ids represented in the filtering set (``S_filter.R`` keys)."""
        return set(self._routes)

    def route_points(self, route_id: int) -> List[Tuple[float, float]]:
        """Filter points belonging to ``route_id``."""
        return self._routes.get(route_id, [])

    def __len__(self) -> int:
        return len(self._points)

    def __repr__(self) -> str:
        return f"FilterSet(points={len(self._points)}, routes={len(self._routes)})"
