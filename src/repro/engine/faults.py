"""Deterministic fault injection for the serving stack.

Production faults — a worker OOM-killed mid-task, a shared-memory segment
vanishing between publish and attach, a truncated delta-sync log — are
rare, racy and unreproducible.  This module turns each of them into a
*named injection point* that fires on a deterministic, seeded schedule,
so the chaos suite (``tests/test_resilience.py``) and the CI chaos job
can prove the resilience runtime recovers from every failure mode on
every run, byte-for-byte reproducibly.

Spec grammar (``RKNNT_FAULTS`` or :func:`injected`)::

    spec     := clause ("," clause)*
    clause   := point [":" option (";" option)*]
    option   := key "=" value
    point    := worker_crash | task_delay | task_hang | arena_attach
              | store_attach | sync_corrupt | reseed_fail
    key      := after     (skip the first N occurrences;          default 0)
              | count     (fire at most N times, 0 = unlimited;   default 1)
              | prob      (per-occurrence fire probability;       default 1.0)
              | seed      (seeds the per-occurrence prob draws;   default 0)
              | delay_ms  (sleep length for task_delay/task_hang)

e.g. ``worker_crash:after=3;count=2`` — crash the worker running the 4th
and 5th shard tasks.  Unlike the tuning knobs, a malformed spec raises
:class:`FaultSpecError` loudly: a chaos run that silently injected
nothing would *pass* CI while proving nothing.

Determinism model: every injection point keeps one **shared** occurrence
counter per clause (a :func:`multiprocessing.Value`, shipped to pool
workers through the initializer), so "the Nth task" means the Nth across
the whole pool regardless of which worker runs it or how the OS schedules
them.  Probabilistic clauses draw from ``random.Random`` seeded with
``(seed, point, occurrence)`` — the decision for occurrence *i* is a pure
function of the spec, independent of arrival order.  Every fire is
appended as a JSON line to ``RKNNT_FAULT_TRACE`` (when set); CI uploads
that schedule on failure so any chaos failure replays exactly.

The injection points and what they simulate:

=================  =====================================================
``worker_crash``   ``os._exit`` in a pool worker (OOM kill, segfault)
``task_delay``     a slow worker (sleeps ``delay_ms`` before the task)
``task_hang``      a hung worker (sleeps ``delay_ms``, default 60 s)
``arena_attach``   shared-memory attach failure (segment vanished)
``store_attach``   store-file attach failure (file vanished / corrupt)
``sync_corrupt``   delta-sync log truncation (parent drops newest delta)
``reseed_fail``    pool reseed failure (arena/pickle/spawn breaks)
=================  =====================================================

All hooks are no-ops (one ``None`` check) when no runtime is installed —
the production path pays nothing.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.engine.resilience import RkNNTError

#: ``RKNNT_FAULTS`` — the ambient fault spec (parsed strictly).
FAULTS_ENV = "RKNNT_FAULTS"
#: ``RKNNT_FAULT_TRACE`` — path receiving one JSON line per fire.
FAULT_TRACE_ENV = "RKNNT_FAULT_TRACE"

#: Exit status of an injected worker crash (distinctive in waitpid logs).
CRASH_EXIT_CODE = 17
#: Default sleep of ``task_hang`` when the clause sets no ``delay_ms`` —
#: far past any reasonable deadline, short enough that a leaked worker
#: cannot outlive a CI job.
HANG_DEFAULT_MS = 60_000.0

WORKER_CRASH = "worker_crash"
TASK_DELAY = "task_delay"
TASK_HANG = "task_hang"
ARENA_ATTACH = "arena_attach"
STORE_ATTACH = "store_attach"
SYNC_CORRUPT = "sync_corrupt"
RESEED_FAIL = "reseed_fail"

#: Every named injection point threaded through the serving stack.
POINTS = frozenset(
    {
        WORKER_CRASH,
        TASK_DELAY,
        TASK_HANG,
        ARENA_ATTACH,
        STORE_ATTACH,
        SYNC_CORRUPT,
        RESEED_FAIL,
    }
)

_OPTION_KEYS = frozenset({"after", "count", "prob", "seed", "delay_ms"})


class FaultSpecError(ValueError):
    """A malformed ``RKNNT_FAULTS`` spec.  Deliberately loud — a chaos
    run that silently injects nothing proves nothing."""


class FaultInjected(RkNNTError):
    """The error raised by raise-kind injection points (``arena_attach``,
    ``store_attach``, ``reseed_fail``).  A subclass of :class:`~repro.engine.resilience
    .RkNNTError`, so it flows through the same recovery paths a real
    failure would."""


@dataclass(frozen=True)
class FaultSpec:
    """One parsed clause of a fault spec."""

    point: str
    after: int = 0
    count: int = 1
    prob: float = 1.0
    seed: int = 0
    delay_ms: Optional[float] = None

    def render(self) -> str:
        """The clause back in spec syntax (used by the fire trace)."""
        options = [f"after={self.after}", f"count={self.count}"]
        if self.prob < 1.0:
            options.append(f"prob={self.prob}")
            options.append(f"seed={self.seed}")
        if self.delay_ms is not None:
            options.append(f"delay_ms={self.delay_ms}")
        return f"{self.point}:{';'.join(options)}"


def parse_spec(text: str) -> Tuple[FaultSpec, ...]:
    """Parse a fault spec string into clauses (strict — see grammar above)."""
    specs: List[FaultSpec] = []
    for raw_clause in text.split(","):
        clause = raw_clause.strip()
        if not clause:
            continue
        point, _, raw_options = clause.partition(":")
        point = point.strip()
        if point not in POINTS:
            raise FaultSpecError(
                f"unknown injection point {point!r} "
                f"(expected one of {sorted(POINTS)})"
            )
        options: Dict[str, Any] = {}
        if raw_options.strip():
            for raw_option in raw_options.split(";"):
                option = raw_option.strip()
                if not option:
                    continue
                key, sep, value = option.partition("=")
                key = key.strip()
                if not sep or key not in _OPTION_KEYS:
                    raise FaultSpecError(
                        f"bad option {option!r} in clause {clause!r} "
                        f"(expected key=value with key in {sorted(_OPTION_KEYS)})"
                    )
                try:
                    if key in ("after", "count", "seed"):
                        options[key] = int(value)
                    else:
                        options[key] = float(value)
                except ValueError:
                    raise FaultSpecError(
                        f"non-numeric value for {key!r} in clause {clause!r}"
                    ) from None
        spec = FaultSpec(point=point, **options)
        if spec.after < 0 or spec.count < 0:
            raise FaultSpecError(f"after/count must be >= 0 in clause {clause!r}")
        if not 0.0 <= spec.prob <= 1.0:
            raise FaultSpecError(f"prob must be in [0, 1] in clause {clause!r}")
        if spec.delay_ms is not None and spec.delay_ms < 0:
            raise FaultSpecError(f"delay_ms must be >= 0 in clause {clause!r}")
        specs.append(spec)
    if not specs:
        raise FaultSpecError(f"fault spec {text!r} contains no clauses")
    return tuple(specs)


class _ClauseState:
    """One clause plus its shared occurrence/fire counters.

    The counters are :func:`multiprocessing.Value` cells so a schedule
    like ``after=3`` counts occurrences across *all* pool workers; the
    whole state ships to workers through the pool initializer (shared
    cells pickle during process spawning — and only then)."""

    def __init__(self, spec: FaultSpec, ctx):
        self.spec = spec
        self.occurrences = ctx.Value("i", 0)
        self.fires = ctx.Value("i", 0)

    def consume(self) -> Optional[int]:
        """Record one occurrence; return its index when the clause fires."""
        spec = self.spec
        with self.occurrences.get_lock():
            occurrence = self.occurrences.value
            self.occurrences.value = occurrence + 1
        if occurrence < spec.after:
            return None
        if spec.prob < 1.0:
            # Seeded per occurrence: the draw for occurrence i is a pure
            # function of the spec, independent of scheduling order.
            rng = random.Random(f"{spec.seed}:{spec.point}:{occurrence}")
            if rng.random() >= spec.prob:
                return None
        with self.fires.get_lock():
            if spec.count and self.fires.value >= spec.count:
                return None
            self.fires.value += 1
        return occurrence


class FaultRuntime:
    """An installed fault schedule: parsed clauses plus shared counters.

    Create one per chaos scenario (``FaultRuntime.from_spec(...)`` or the
    :func:`injected` context manager) and install it; the serving stack
    consults the installed runtime at each injection point via
    :func:`fire`.  Ship it to pool workers by passing it through the pool
    initializer — the counters stay shared, so schedules are pool-global.
    """

    def __init__(self, specs: Tuple[FaultSpec, ...], mp_context=None):
        # Default the shared counters to the *spawn* context: its named
        # semaphores pickle into spawn/forkserver pools and fork children
        # inherit them, so one runtime is safe under every start method.
        # A fork-context SemLock by contrast raises at pickling time the
        # moment an env-installed schedule meets a spawn pool.
        ctx = mp_context if mp_context is not None else multiprocessing.get_context("spawn")
        self.specs = tuple(specs)
        self._states: Dict[str, List[_ClauseState]] = {}
        for spec in self.specs:
            self._states.setdefault(spec.point, []).append(_ClauseState(spec, ctx))

    @classmethod
    def from_spec(cls, text: str, mp_context=None) -> "FaultRuntime":
        return cls(parse_spec(text), mp_context=mp_context)

    # -- introspection (tests, trace) ----------------------------------
    def occurrences(self, point: str) -> int:
        return sum(state.occurrences.value for state in self._states.get(point, ()))

    def fire_count(self, point: str) -> int:
        return sum(state.fires.value for state in self._states.get(point, ()))

    def schedule(self) -> List[str]:
        return [spec.render() for spec in self.specs]

    # -- the hot path --------------------------------------------------
    def fire(self, point: str) -> bool:
        """Consume one occurrence of ``point``; act if a clause fires.

        Crash points never return; delay points sleep; raise points raise
        :class:`FaultInjected`.  ``sync_corrupt`` (and any point whose
        effect lives in the caller) returns ``True`` and lets the caller
        apply the corruption.  Returns ``False`` when nothing fired.
        """
        fired: List[_ClauseState] = []
        for state in self._states.get(point, ()):
            occurrence = state.consume()
            if occurrence is not None:
                fired.append(state)
                _trace(point, state.spec, occurrence)
        if not fired:
            return False
        if point == WORKER_CRASH:
            os._exit(CRASH_EXIT_CODE)
        if point in (TASK_DELAY, TASK_HANG):
            default_ms = HANG_DEFAULT_MS if point == TASK_HANG else 0.0
            delay_ms = max(
                state.spec.delay_ms if state.spec.delay_ms is not None else default_ms
                for state in fired
            )
            if delay_ms > 0:
                time.sleep(delay_ms / 1000.0)
            return True
        if point in (ARENA_ATTACH, STORE_ATTACH, RESEED_FAIL):
            raise FaultInjected(
                f"injected fault at {point}",
                point=point,
                spec=fired[0].spec.render(),
            )
        return True

    def __repr__(self) -> str:
        return f"FaultRuntime({', '.join(self.schedule())})"


def _trace(point: str, spec: FaultSpec, occurrence: int) -> None:
    """Append one fire to the ``RKNNT_FAULT_TRACE`` JSONL schedule."""
    path = os.environ.get(FAULT_TRACE_ENV, "").strip()
    if not path:
        return
    entry = {
        "point": point,
        "occurrence": occurrence,
        "spec": spec.render(),
        "pid": os.getpid(),
        "time": time.time(),
    }
    try:
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry) + "\n")
    except OSError:  # tracing must never become its own fault
        pass


# ----------------------------------------------------------------------
# Installation
# ----------------------------------------------------------------------
_RUNTIME: Optional[FaultRuntime] = None
_ENV_CHECKED = False


def install(runtime: Optional[FaultRuntime]) -> None:
    """Install ``runtime`` as the process's fault schedule (``None`` clears)."""
    global _RUNTIME, _ENV_CHECKED
    _RUNTIME = runtime
    _ENV_CHECKED = True


def uninstall() -> None:
    """Clear the installed schedule and re-arm the env check."""
    global _RUNTIME, _ENV_CHECKED
    _RUNTIME = None
    _ENV_CHECKED = False


def current() -> Optional[FaultRuntime]:
    """The installed runtime; lazily built from ``RKNNT_FAULTS`` once.

    Pool parents ship this to workers through the initializer, so the
    worker-side schedule shares the parent's counters even under spawn.
    """
    global _RUNTIME, _ENV_CHECKED
    if _RUNTIME is None and not _ENV_CHECKED:
        text = os.environ.get(FAULTS_ENV, "").strip()
        if text:
            # Mark the env checked only on success: a malformed spec must
            # raise on *every* lookup, not once and then inject nothing.
            _RUNTIME = FaultRuntime.from_spec(text)
        _ENV_CHECKED = True
    return _RUNTIME


def fire(point: str) -> bool:
    """Consume one occurrence of ``point`` on the installed runtime.

    The production no-op: without an installed runtime (and with
    ``RKNNT_FAULTS`` unset) this is one ``None`` check.
    """
    runtime = current()
    if runtime is None:
        return False
    return runtime.fire(point)


@contextmanager
def injected(spec: str, mp_context=None) -> Iterator[FaultRuntime]:
    """Install a fault schedule for the scope of a chaos test.

    >>> from repro.engine import faults
    >>> with faults.injected("task_delay:delay_ms=0;count=1") as runtime:
    ...     faults.fire(faults.TASK_DELAY)
    True
    >>> faults.fire(faults.TASK_DELAY)
    False
    """
    runtime = FaultRuntime.from_spec(spec, mp_context=mp_context)
    previous = _RUNTIME
    install(runtime)
    try:
        yield runtime
    finally:
        install(previous)
        if previous is None:
            uninstall()
