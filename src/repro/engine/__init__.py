"""The unified query-execution engine.

Every RkNNT evaluation strategy in the paper — basic filter–refine
(Section 4), the Voronoi optimisation (Section 5.1) and divide & conquer
(Section 5.2) — is the same three-stage pipeline with different knobs:

    filter  (build the filtering set from the RR-tree)
      → prune  (discard TR-tree nodes/endpoints dominated by ≥ k routes)
      → verify (exactly check the survivors)

This package factors that pipeline out of the per-method modules:

* :mod:`repro.engine.plan` — :class:`QueryPlan`, the declarative description
  of a strategy (which filter to use, whether to decompose per query point,
  which geometry backend to run on);
* :mod:`repro.engine.context` — :class:`ExecutionContext`, the per-dataset
  caches shared across queries of a workload (flattened route matrices for
  vectorized verification, memoised single-point sub-query answers);
* :mod:`repro.engine.filterset` — the filtering set ``S_filter`` with packed
  array views for the vectorized kernels;
* :mod:`repro.engine.executor` — :class:`QueryExecutor` (the staged
  pipeline) and the :func:`execute` entry point;
* :mod:`repro.engine.parallel` — :class:`ShardedExecutor`, which shards
  batch workloads across a process pool with one private context per
  worker and deterministic result re-ordering; reusable as the processor's
  persistent *serving pool* (transition churn is delta-synced into the
  workers, route churn reseeds);
* :mod:`repro.engine.arena` — shared-memory dataset arenas: the flattened
  route matrix and packed R-tree box blocks published once into a
  :mod:`multiprocessing.shared_memory` segment that workers attach
  read-only views of in O(1), instead of rebuilding per worker;
* :mod:`repro.engine.continuous` — :class:`ContinuousRkNNT` and
  :class:`Subscription`, delta-maintained standing queries over the
  transition index's typed mutation stream;
* :mod:`repro.engine.resilience` — the typed failure taxonomy
  (:class:`RkNNTError` and friends), deadlines, bounded backoff retries
  and admission control for the serving runtime;
* :mod:`repro.engine.faults` — deterministic fault injection: named
  injection points threaded through the serving stack, driven by the
  ``RKNNT_FAULTS`` spec so every chaos run reproduces.
* :mod:`repro.engine.locality` — the query-locality engine
  (``RKNNT_LOCALITY``): spatially clustered batch queries share one
  pilot's filter set per cluster, with a δ-margin TR-tree prune and exact
  per-member re-testing, so answers stay identical to the unshared path.

The geometry kernels themselves live in :mod:`repro.geometry.kernels`; the
engine is backend-agnostic and produces element-wise identical answers on
the numpy and pure-Python backends.
"""

from repro.engine.arena import ArenaHandle, DatasetArena, publish_arena
from repro.engine.context import ExecutionContext
from repro.engine.continuous import (
    ContinuousRkNNT,
    DeltaStatistics,
    ResultDelta,
    Subscription,
)
from repro.engine.executor import QueryExecutor, execute
from repro.engine.filterset import FilterSet
from repro.engine.locality import cluster_jobs, execute_batch
from repro.engine.parallel import ShardedExecutor
from repro.engine.resilience import (
    ArenaAttachError,
    Deadline,
    DeadlineExceeded,
    PoolSaturated,
    ReseedError,
    RkNNTError,
    SyncLogError,
    UpdateStreamError,
    WorkerCrashError,
)
from repro.engine.plan import (
    DIVIDE_CONQUER,
    FILTER_REFINE,
    LOCALITY_OFF,
    LOCALITY_ON,
    METHODS,
    TRAVERSAL_BLOCK,
    TRAVERSAL_NODE,
    QueryPlan,
    VORONOI,
)

__all__ = [
    "ArenaAttachError",
    "ArenaHandle",
    "ContinuousRkNNT",
    "DIVIDE_CONQUER",
    "DatasetArena",
    "Deadline",
    "DeadlineExceeded",
    "publish_arena",
    "DeltaStatistics",
    "ExecutionContext",
    "FILTER_REFINE",
    "FilterSet",
    "LOCALITY_OFF",
    "LOCALITY_ON",
    "METHODS",
    "PoolSaturated",
    "QueryExecutor",
    "QueryPlan",
    "ReseedError",
    "ResultDelta",
    "RkNNTError",
    "ShardedExecutor",
    "Subscription",
    "SyncLogError",
    "TRAVERSAL_BLOCK",
    "TRAVERSAL_NODE",
    "UpdateStreamError",
    "VORONOI",
    "WorkerCrashError",
    "cluster_jobs",
    "execute",
    "execute_batch",
]
