"""Parallel sharded execution of RkNNT batch workloads.

The single-process batch path (:meth:`repro.core.rknnt.RkNNTProcessor
.query_batch`) answers queries one after another against a shared
:class:`~repro.engine.context.ExecutionContext`.  Queries are independent,
so a workload shards trivially — what does *not* shard trivially in Python
is the state: the indexes and caches live in one process, and the GIL
serialises any thread-based attempt.  :class:`ShardedExecutor` therefore
distributes shards across a :class:`concurrent.futures.ProcessPoolExecutor`:

* the execution context is pickled **once** (with its derived caches
  stripped — see :meth:`~repro.engine.context.ExecutionContext.__getstate__`)
  and shipped to each worker through the pool's *initializer*, so per-query
  messages carry only the query itself, never the dataset;
* each worker owns a private context whose route matrix and sub-query cache
  are rebuilt lazily on first use and then reused for every query the
  worker answers;
* shards are round-trip tagged with their position, so results always come
  back in workload order regardless of completion order — ``query_batch``
  output is deterministic and element-wise identical to the serial path
  (``tests/test_parallel.py`` asserts this against the brute-force oracle).

Worker processes are started with the ``fork`` method where available (the
context transfer is then practically free for the OS) and ``spawn``
otherwise; both paths still ship the pickled context explicitly so the
semantics never depend on the start method.
"""

from __future__ import annotations

import concurrent.futures
import math
import multiprocessing
import os
import pickle
import sys
from typing import FrozenSet, List, Optional, Sequence, Tuple, Union

from repro.core.result import RkNNTResult
from repro.core.semantics import EXISTS, Semantics
from repro.engine.context import ExecutionContext
from repro.engine.executor import execute
from repro.engine.plan import QueryPlan

#: One job of a sharded workload: normalised query points plus the route ids
#: excluded for that query (per-query self-exclusion happens in the parent,
#: exactly as the serial path does it).
ShardJob = Tuple[Sequence[Tuple[float, float]], FrozenSet[int]]

#: A shard shipped to a worker: position of its first job in the workload,
#: the jobs themselves, and the query parameters shared by the whole batch.
Shard = Tuple[int, List[ShardJob], int, QueryPlan, Semantics]

# ----------------------------------------------------------------------
# Worker-process side
# ----------------------------------------------------------------------
#: The worker's private execution context, installed by the pool
#: initializer.  Module-level because ProcessPoolExecutor tasks can only
#: reach state through module globals.
_WORKER_CONTEXT: Optional[ExecutionContext] = None


def _initialize_worker(context_payload: bytes) -> None:
    """Pool initializer: unpickle the shared context exactly once per worker."""
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = pickle.loads(context_payload)


def _run_shard(shard: Shard) -> Tuple[int, List[RkNNTResult]]:
    """Answer one shard of the workload against the worker's context."""
    base_index, jobs, k, plan, semantics = shard
    context = _WORKER_CONTEXT
    if context is None:  # pragma: no cover - initializer contract violation
        raise RuntimeError("shard worker used before initialization")
    results = [
        execute(context, query_points, k, plan, semantics, exclude_route_ids=excluded)
        for query_points, excluded in jobs
    ]
    return base_index, results


# ----------------------------------------------------------------------
# Parent-process side
# ----------------------------------------------------------------------
def resolve_worker_count(workers: Optional[int]) -> int:
    """Normalise a ``workers`` knob into a concrete worker count.

    ``None`` means "pick for me": one worker per available CPU (respecting
    the process's affinity mask where exposed).  ``0`` is rejected: on
    every other surface of the library (``query_batch``, the CLI,
    ``VertexRkNNTIndex.build``) zero means "in-process, no pool", and a
    pool executor cannot honour that — treating it as "all CPUs" here
    would silently invert the caller's intent.  Negative values are
    rejected outright.
    """
    if workers is None:
        return available_cpu_count()
    if workers <= 0:
        raise ValueError(
            f"workers must be positive for a sharded executor (got {workers}); "
            "use the serial path (workers=0 at the processor/CLI level) or "
            "None for one worker per CPU"
        )
    return int(workers)


def available_cpu_count() -> int:
    """CPUs this process may actually use (affinity-aware where possible)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return max(1, os.cpu_count() or 1)


def _preferred_start_method() -> str:
    """Default start method: ``fork`` on Linux, the platform default elsewhere.

    Fork makes the context transfer practically free, but it is only safe
    on Linux — macOS lists it as available yet aborts forked children that
    touch framework state (which is why CPython switched the macOS default
    to spawn).
    """
    if sys.platform.startswith("linux"):
        methods = multiprocessing.get_all_start_methods()
        if "fork" in methods:
            return "fork"
    return multiprocessing.get_start_method(allow_none=False)


class ShardedExecutor:
    """Shards batch workloads across a process pool, one context per worker.

    Parameters
    ----------
    context:
        The execution context to replicate into every worker.  Its derived
        caches are never serialised; each worker rebuilds its own.
    workers:
        Number of worker processes; ``None`` selects the available CPU
        count.  ``0`` is rejected — it means "in-process" on every other
        surface of the library, which a pool cannot honour.
    chunk_size:
        Queries per shard task.  Smaller shards balance load better,
        larger shards amortise inter-process messaging; the default aims
        at roughly four shards per worker.
    start_method:
        Multiprocessing start method override (``fork`` where available by
        default; the context is shipped explicitly either way).

    The executor owns one pool across all of its :meth:`run` calls — reuse
    it (it is a context manager) when issuing several batches, so workers
    keep their contexts and warmed caches between batches.
    """

    def __init__(
        self,
        context: ExecutionContext,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        start_method: Optional[str] = None,
    ):
        if chunk_size is not None and chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.context = context
        self.workers = resolve_worker_count(workers)
        self.chunk_size = chunk_size
        self.start_method = start_method or _preferred_start_method()
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None
        self._pool_versions: Tuple[int, int] = (-1, -1)

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _context_versions(self) -> Tuple[int, int]:
        return (
            self.context.route_index.version,
            self.context.transition_index.version,
        )

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        versions = self._context_versions()
        if self._pool is not None and versions != self._pool_versions:
            # The indexes changed since the workers were seeded (dynamic
            # route/transition updates bump the version counters): the
            # worker snapshots are stale, so rebuild the pool.  Same
            # guarantee as the context's own version-guarded caches —
            # holding a ShardedExecutor never produces stale answers.
            self.close()
        if self._pool is None:
            payload = pickle.dumps(self.context, protocol=pickle.HIGHEST_PROTOCOL)
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context(self.start_method),
                initializer=_initialize_worker,
                initargs=(payload,),
            )
            self._pool_versions = versions
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ShardedExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _shards(
        self, jobs: List[ShardJob], k: int, plan: QueryPlan, semantics: Semantics
    ) -> List[Shard]:
        if self.chunk_size is not None:
            chunk = self.chunk_size
        else:
            # ~4 shards per worker: enough slack that an unlucky shard of
            # expensive queries does not leave the other workers idle.
            chunk = max(1, math.ceil(len(jobs) / (self.workers * 4)))
        return [
            (start, jobs[start : start + chunk], k, plan, semantics)
            for start in range(0, len(jobs), chunk)
        ]

    def run(
        self,
        jobs: Sequence[ShardJob],
        k: int,
        plan: QueryPlan,
        semantics: Union[Semantics, str] = EXISTS,
    ) -> List[RkNNTResult]:
        """Answer every job of the workload, preserving workload order.

        ``jobs`` pairs each query's normalised points with its excluded
        route ids.  The return list is index-aligned with ``jobs`` — shard
        completion order never leaks into the results.
        """
        semantics = Semantics.coerce(semantics)
        # Resolve every "auto" knob in the parent so each worker runs the
        # exact plan the serial path would have run.
        plan = plan.resolved()
        job_list = list(jobs)
        if not job_list:
            return []
        pool = self._ensure_pool()
        futures = [
            pool.submit(_run_shard, shard)
            for shard in self._shards(job_list, k, plan, semantics)
        ]
        results: List[Optional[RkNNTResult]] = [None] * len(job_list)
        for future in concurrent.futures.as_completed(futures):
            base_index, shard_results = future.result()
            results[base_index : base_index + len(shard_results)] = shard_results
        assert all(result is not None for result in results)
        return results  # type: ignore[return-value]

    def __repr__(self) -> str:
        state = "open" if self._pool is not None else "idle"
        return (
            f"ShardedExecutor(workers={self.workers}, "
            f"start_method={self.start_method!r}, {state})"
        )
