"""Parallel sharded execution of RkNNT workloads over a worker pool.

The single-process batch path (:meth:`repro.core.rknnt.RkNNTProcessor
.query_batch`) answers queries one after another against a shared
:class:`~repro.engine.context.ExecutionContext`.  Queries are independent,
so a workload shards trivially — what does *not* shard trivially in Python
is the state: the indexes and caches live in one process, and the GIL
serialises any thread-based attempt.  :class:`ShardedExecutor` therefore
distributes shards across a :class:`concurrent.futures.ProcessPoolExecutor`:

* the execution context is pickled **once** (with its derived caches
  stripped — see :meth:`~repro.engine.context.ExecutionContext.__getstate__`)
  and shipped to each worker through the pool's *initializer*, so per-query
  messages carry only the query itself, never the dataset;
* alongside the pickle the parent publishes a **shared-memory dataset
  arena** (:mod:`repro.engine.arena`) holding the flattened route matrix
  and the packed per-node box blocks of both R-trees; a worker *attaches*
  read-only views in O(1) instead of rebuilding those arrays from the
  unpickled objects, and all workers share one physical copy;
* shards are round-trip tagged with their position, so results always come
  back in workload order regardless of completion order — ``query_batch``
  output is deterministic and element-wise identical to the serial path
  (``tests/test_parallel.py`` asserts this against the brute-force oracle).

**Serving (persistent) use.**  An executor is reusable across :meth:`run`
calls and is what :meth:`repro.core.rknnt.RkNNTProcessor.serving_pool`
keeps alive between batches.  Reuse is safe under dynamic updates:

* *transition churn* is forwarded to the workers as the typed
  :class:`~repro.index.transition_index.TransitionDelta` stream the parent
  records from the index.  Each task carries the (tiny) tail of deltas the
  worker may not have applied yet; the worker replays them onto its
  replica, reproducing the parent's version counters exactly, and its own
  version-guarded caches invalidate (or delta-patch) instead of being
  rebuilt from scratch;
* *route churn* changes the geometry every cached structure was built
  against, so the pool is reseeded (fresh pickle + fresh arena) — route
  mutations are rare on the serving path, transition churn is the common
  case.

**Resilience.**  Faults on the pool path are recovered by policy, never by
luck (:mod:`repro.engine.resilience` holds the primitives,
``tests/test_resilience.py`` drives every failure mode through
:mod:`repro.engine.faults`):

* a worker *crash* mid-task (OOM kill, segfault) breaks the pool; the
  executor reseeds and replays the workload — shard tasks are pure and
  sync replay is idempotent — under a bounded retry loop with
  exponentially backed-off, jittered pauses;
* a *corrupted sync log* (a worker's delta replay cannot reproduce the
  parent's version) surfaces as a typed
  :class:`~repro.engine.resilience.SyncLogError` and is recovered the
  same way: a fresh seed carries the current state, no replay needed;
* after ``RKNNT_MAX_RESEEDS`` consecutive pool failures the executor
  **degrades**: it answers in process through the identical serial code
  path, so answers never change — only throughput.  Degradation is sticky
  until :meth:`~ShardedExecutor.close`;
* a :class:`~repro.engine.resilience.Deadline` bounds every batch; on the
  pool path it becomes the ``future.result`` timeout, and on expiry the
  pool is torn down hard (hung workers are terminated) and
  :class:`~repro.engine.resilience.DeadlineExceeded` is raised — a hung
  worker can never stall a caller past its budget;
* admission is bounded by ``RKNNT_QUEUE_LIMIT``: a batch that would
  overflow the in-flight window while other work is queued is refused
  with :class:`~repro.engine.resilience.PoolSaturated`, and submission is
  windowed so at most that many futures are ever buffered.

Worker processes are started with the ``fork`` method where available (the
context transfer is then practically free for the OS) and ``spawn``
otherwise; both paths still ship the pickled context explicitly so the
semantics never depend on the start method.
"""

from __future__ import annotations

import concurrent.futures
import logging
import math
import multiprocessing
import os
import pickle
import sys
import threading
from concurrent.futures.process import BrokenProcessPool
from typing import (
    Any,
    Callable,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.result import RkNNTResult
from repro.core.semantics import EXISTS, Semantics
from repro.engine import arena as arena_module
from repro.engine import faults, resilience
from repro.engine.context import ExecutionContext
from repro.engine.executor import QueryExecutor
from repro.engine.locality import cluster_jobs, dataset_cell_size, execute_batch
from repro.engine.plan import QueryPlan
from repro.engine.resilience import (
    Deadline,
    DeadlineExceeded,
    PoolSaturated,
    ReseedError,
    RkNNTError,
    StoreError,
    SyncLogError,
    WorkerCrashError,
)
from repro.index.transition_index import DELTA_INSERT, TransitionDelta

_LOGGER = logging.getLogger("repro.engine.parallel")

#: One job of a sharded workload: normalised query points plus the route ids
#: excluded for that query (per-query self-exclusion happens in the parent,
#: exactly as the serial path does it).
ShardJob = Tuple[Sequence[Tuple[float, float]], FrozenSet[int]]

#: Transition-churn sync attached to every task: the transition-index
#: version the worker must reach, plus the delta tail that takes it there.
Sync = Optional[Tuple[int, Tuple[TransitionDelta, ...]]]

#: Pending sync deltas retained while a pool is alive.  A longer backlog
#: means per-task sync payloads (and worker replay) stop being cheap, so
#: past this limit the executor reseeds the pool instead.
SYNC_DELTA_LIMIT = 4096

# ----------------------------------------------------------------------
# Worker-process side
# ----------------------------------------------------------------------
#: The worker's private execution context, installed by the pool
#: initializer.  Module-level because ProcessPoolExecutor tasks can only
#: reach state through module globals.
_WORKER_CONTEXT: Optional[ExecutionContext] = None
#: The worker's arena attachment (kept alive so the shared views stay
#: mapped for the life of the worker); ``None`` on the pickle-only path.
_WORKER_ARENA = None
#: The store attach failure (a :class:`~repro.engine.resilience.StoreError`)
#: recorded when a store-handle seed could not be attached.  The first task
#: re-raises it so the parent can reseed with a full pickle — initializers
#: themselves must never raise (``ProcessPoolExecutor`` would just mark the
#: pool broken without the typed cause).
_WORKER_STORE_ERROR: Optional[StoreError] = None


def _initialize_worker(
    context_payload: Optional[bytes],
    arena_handle,
    fault_runtime=None,
    store_handle=None,
) -> None:
    """Pool initializer: build the worker's private context exactly once.

    Store-backed seeding (``store_handle`` set, ``context_payload`` None)
    attaches the persistent store file in O(1); the pickle path unpickles
    the shipped context and attaches the dataset arena when one was
    published.  The parent's installed fault schedule rides along so chaos
    counters are pool-global (the Nth task means the Nth across all
    workers)."""
    global _WORKER_CONTEXT, _WORKER_ARENA, _WORKER_STORE_ERROR
    if fault_runtime is not None:
        faults.install(fault_runtime)
    _WORKER_CONTEXT = None
    _WORKER_ARENA = None
    _WORKER_STORE_ERROR = None
    if store_handle is not None:
        from repro.engine import store as store_module

        try:
            _WORKER_CONTEXT = store_module.attach_context(store_handle)
        except StoreError as exc:
            # Recorded, not raised: the first task surfaces it as a typed
            # StoreError and the parent reseeds with the full pickle.
            _WORKER_STORE_ERROR = exc
        except Exception as exc:  # pragma: no cover - defensive
            _WORKER_STORE_ERROR = StoreError(
                "store attach failed", path=store_handle.path, cause=repr(exc)
            )
    if _WORKER_CONTEXT is None and context_payload is not None:
        _WORKER_CONTEXT = pickle.loads(context_payload)
    if arena_handle is not None and _WORKER_CONTEXT is not None:
        try:
            _WORKER_ARENA = arena_module.attach_arena(arena_handle, _WORKER_CONTEXT)
        except Exception:
            # Attach failures (segment vanished, layout mismatch, injected
            # ArenaAttachError) degrade to the private-rebuild path —
            # never to wrong answers.
            _WORKER_ARENA = None


def _worker_context() -> ExecutionContext:
    context = _WORKER_CONTEXT
    if context is None:
        if _WORKER_STORE_ERROR is not None:
            raise _WORKER_STORE_ERROR
        # pragma: no cover - initializer contract violation
        raise RuntimeError("pool worker used before initialization")
    return context


def _apply_sync(context: ExecutionContext, sync: Sync) -> None:
    """Replay the parent's transition churn onto the worker's replica.

    Deltas the worker already applied (version ≤ its index version) are
    skipped, so the same sync payload is idempotent across the tasks of one
    run and across runs.  Replaying through the index's own mutation API
    reproduces the parent's version counters exactly and lets the worker's
    version-guarded caches invalidate — or delta-patch — like any other
    consumer of the stream.  A log that cannot reproduce the target version
    (a gap, or a truncated tail) raises a typed
    :class:`~repro.engine.resilience.SyncLogError`; the parent recovers it
    by reseeding, which ships the current state wholesale.
    """
    if sync is None:
        return
    target, deltas = sync
    index = context.transition_index
    if index.version >= target:
        return
    for delta in deltas:
        if delta.version <= index.version:
            continue
        if delta.version != index.version + 1:
            raise SyncLogError(
                "worker sync gap",
                at_version=index.version,
                next_delta=delta.version,
                target=target,
            )
        transition = delta.transition
        if delta.kind == DELTA_INSERT:
            index.transitions.add(transition)
            index.add_transition(transition)
        else:
            index.transitions.remove(transition.transition_id)
            index.remove_transition(transition)
    if index.version != target:
        raise SyncLogError(
            "worker sync fell short",
            reached=index.version,
            target=target,
            deltas=len(deltas),
        )


def _fire_task_faults() -> None:
    """The per-task injection points, in severity order."""
    faults.fire(faults.WORKER_CRASH)
    faults.fire(faults.TASK_HANG)
    faults.fire(faults.TASK_DELAY)


def _run_shard(task):
    """Answer one shard of a batch workload against the worker's context.

    The payload names each job's *workload index* explicitly (cluster-aware
    sharding hands out non-contiguous slices), runs the shard through the
    locality-aware batch loop — which degenerates to the plain per-job
    ``execute`` loop when the locality engine is off — and ships the
    worker's reuse/locality counter delta home so the parent context's
    counters cover the whole batch.
    """
    indices, (jobs, k, plan, semantics), sync = task
    context = _worker_context()
    _fire_task_faults()
    _apply_sync(context, sync)
    before = context.counter_snapshot()
    results = execute_batch(context, jobs, k, plan, semantics)
    after = context.counter_snapshot()
    delta = {name: after[name] - before[name] for name in after}
    return indices, results, delta


def standing_parts(context: ExecutionContext, job) -> List[Any]:
    """Rebuild one standing query against ``context``: run its sub-queries
    and return, per sub-query, ``(confirmed map, stats, filter set)`` —
    everything :class:`~repro.engine.continuous.Subscription` needs to
    re-install its retained filter structures.  Shared by the pool worker
    task and the degraded in-process fallback, so both produce identical
    parts."""
    sub_queries, k, plan, excluded = job
    parts = []
    for sub in sub_queries:
        executor = QueryExecutor(
            context,
            k,
            use_voronoi=plan.use_voronoi,
            exclude_route_ids=excluded,
            backend=plan.backend,
            filter_traversal=plan.filter_traversal,
        )
        confirmed = executor.run(sub)
        filter_set = executor.filter_set
        filter_set._packed = None  # derived arrays; the parent repacks lazily
        parts.append((confirmed, executor.stats, filter_set))
    return parts


def _run_standing(task):
    """Pool task wrapper around :func:`standing_parts`."""
    base_index, job, sync = task
    context = _worker_context()
    _fire_task_faults()
    _apply_sync(context, sync)
    return base_index, standing_parts(context, job)


# ----------------------------------------------------------------------
# Parent-process side
# ----------------------------------------------------------------------
def resolve_worker_count(workers: Optional[int]) -> int:
    """Normalise a ``workers`` knob into a concrete worker count.

    ``None`` means "pick for me": one worker per available CPU (respecting
    the process's affinity mask where exposed).  ``0`` is rejected: on
    every other surface of the library (``query_batch``, the CLI,
    ``VertexRkNNTIndex.build``) zero means "in-process, no pool", and a
    pool executor cannot honour that — treating it as "all CPUs" here
    would silently invert the caller's intent.  Negative values are
    rejected outright.
    """
    if workers is None:
        return available_cpu_count()
    if workers <= 0:
        raise ValueError(
            f"workers must be positive for a sharded executor (got {workers}); "
            "use the serial path (workers=0 at the processor/CLI level) or "
            "None for one worker per CPU"
        )
    return int(workers)


def available_cpu_count() -> int:
    """CPUs this process may actually use (affinity-aware where possible)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return max(1, os.cpu_count() or 1)


#: ``RKNNT_START_METHOD`` — overrides the default multiprocessing start
#: method (``fork`` / ``spawn`` / ``forkserver``).  An explicit
#: ``start_method=`` argument still wins; unknown values are ignored (a
#: mistyped tuning knob must never change answers or crash a query).
START_METHOD_ENV = "RKNNT_START_METHOD"

#: ``RKNNT_SHARD_BY=cluster`` assigns whole spatial clusters (the grid
#: snap of :func:`repro.engine.locality.cluster_jobs`) to the same shard
#: instead of slicing the workload in input order.  Nearby queries then
#: run in the same worker — its caches and arena pages stay hot, and with
#: ``RKNNT_LOCALITY=1`` the cluster's pilot/neighbour sharing happens
#: entirely inside one process.  Results are re-scattered to workload
#: order either way; unknown values fall back to ``index``.
SHARD_BY_ENV = "RKNNT_SHARD_BY"
SHARD_BY_INDEX = "index"
SHARD_BY_CLUSTER = "cluster"


def shard_by() -> str:
    """The configured shard-assignment policy (``index`` unless overridden)."""
    value = os.environ.get(SHARD_BY_ENV, "").strip().lower()
    if value == SHARD_BY_CLUSTER:
        return SHARD_BY_CLUSTER
    return SHARD_BY_INDEX


#: ``RKNNT_MIN_SHARD_BATCH`` — the smallest batch worth spawning a
#: per-call worker pool for.  ``query_batch(workers=N)`` answers smaller
#: batches serially instead (and likewise whenever fewer than two CPUs
#: are available — pool setup then costs more than it buys; the batch
#: benchmark measured a 0.42x "speedup" on one CPU).  Persistent serving
#: pools are exempt: their setup cost is already paid.  ``0`` disables
#: the fallback entirely — including the CPU guard — forcing
#: ``workers=N`` to be honoured (the differential tests use this to
#: exercise the real pool path on single-CPU runners).  Unparseable
#: values fall back to the default (a mistyped tuning knob must never
#: change answers or crash a query).
MIN_SHARD_BATCH_ENV = "RKNNT_MIN_SHARD_BATCH"
DEFAULT_MIN_SHARD_BATCH = 2


def min_shard_batch() -> int:
    """The configured minimum batch size for per-call pool spawning."""
    raw = os.environ.get(MIN_SHARD_BATCH_ENV, "").strip()
    if raw:
        try:
            value = int(raw)
        except ValueError:
            return DEFAULT_MIN_SHARD_BATCH
        if value >= 0:
            return value
    return DEFAULT_MIN_SHARD_BATCH


def _preferred_start_method() -> str:
    """Default start method: env override, else ``fork`` on Linux, else the
    platform default.

    Fork makes the context transfer practically free, but it is only safe
    on Linux — macOS lists it as available yet aborts forked children that
    touch framework state (which is why CPython switched the macOS default
    to spawn).  Since the columnar dataset core, the context pickle is the
    same compact column payload under every start method, so ``spawn``
    serving (macOS/Windows, or ``RKNNT_START_METHOD=spawn`` anywhere) runs
    the identical protocol — the CI spawn leg asserts answer equality.
    """
    requested = os.environ.get(START_METHOD_ENV, "").strip().lower()
    if requested and requested in multiprocessing.get_all_start_methods():
        return requested
    if sys.platform.startswith("linux"):
        methods = multiprocessing.get_all_start_methods()
        if "fork" in methods:
            return "fork"
    return multiprocessing.get_start_method(allow_none=False)


class BatchHandle:
    """A flushed batch in flight on its own dispatch thread.

    The network front-end (:mod:`repro.engine.server`) must keep its
    event loop responsive while a batch blocks in ``future.result`` /
    serial execution, so each flush runs ``runner`` on a dedicated daemon
    thread and exposes the outcome through a
    :class:`concurrent.futures.Future` (``asyncio.wrap_future`` awaits it
    without polling).

    Deliberately *not* tied to :meth:`ShardedExecutor.close`: the
    executor's crash-recovery retry loop calls ``close()`` mid-batch to
    reseed the pool, and tearing the dispatch thread down with it would
    abort the very retry that is saving the batch.
    """

    _counter = 0
    _counter_lock = threading.Lock()

    def __init__(self, runner: Callable[[], Any], label: Optional[str] = None):
        with BatchHandle._counter_lock:
            BatchHandle._counter += 1
            number = BatchHandle._counter
        self.future: "concurrent.futures.Future[Any]" = concurrent.futures.Future()
        self._thread = threading.Thread(
            target=self._drive,
            args=(runner,),
            name=label or f"rknnt-batch-{number}",
            daemon=True,
        )
        self._thread.start()

    def _drive(self, runner: Callable[[], Any]) -> None:
        if not self.future.set_running_or_notify_cancel():
            return
        try:
            self.future.set_result(runner())
        except BaseException as exc:  # noqa: BLE001 — relayed, not swallowed
            self.future.set_exception(exc)

    def done(self) -> bool:
        return self.future.done()

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block for the batch outcome (re-raising its failure, if any)."""
        return self.future.result(timeout=timeout)


class ShardedExecutor:
    """Shards RkNNT workloads across a process pool, one context per worker.

    Parameters
    ----------
    context:
        The execution context to replicate into every worker.  Its derived
        caches are never serialised; workers attach them from the shared
        arena (or rebuild privately on the fallback path).
    workers:
        Number of worker processes; ``None`` selects the available CPU
        count.  ``0`` is rejected — it means "in-process" on every other
        surface of the library, which a pool cannot honour.
    chunk_size:
        Queries per shard task.  Smaller shards balance load better,
        larger shards amortise inter-process messaging; the default aims
        at roughly four shards per worker.
    start_method:
        Multiprocessing start method override (``fork`` where available by
        default; the context is shipped explicitly either way).
    use_arena:
        ``True`` / ``False`` forces the shared-memory arena on or off for
        this executor; ``None`` (default) defers to the ``RKNNT_ARENA`` /
        ``RKNNT_ARENA_MIN_BYTES`` environment knobs.
    queue_limit:
        Bound on in-flight shard tasks (admission + submission window);
        ``None`` defers to ``RKNNT_QUEUE_LIMIT``, ``0`` is unbounded.

    The executor owns one pool across all of its :meth:`run` calls — reuse
    it (it is a context manager, and the processor's ``serving_pool`` keeps
    one alive) when issuing several batches, so workers keep their contexts,
    arena attachments and warmed caches between batches.  Dynamic updates
    never produce stale answers: transition churn is delta-synced into the
    workers, route churn reseeds the pool.

    Failure policy (see the module docstring): pool failures inside one
    batch are retried with reseed-and-replay up to ``RKNNT_MAX_RESEEDS``
    times with jittered backoff; past the budget the executor turns
    :attr:`degraded` and answers in process (identical results).  A
    successful batch resets the consecutive-failure count; :meth:`close`
    resets degradation.
    """

    def __init__(
        self,
        context: ExecutionContext,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        start_method: Optional[str] = None,
        use_arena: Optional[bool] = None,
        queue_limit: Optional[int] = None,
    ):
        if chunk_size is not None and chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.context = context
        self.workers = resolve_worker_count(workers)
        self.chunk_size = chunk_size
        self.start_method = start_method or _preferred_start_method()
        self.use_arena = use_arena
        self.queue_limit = (
            resilience.default_queue_limit()
            if queue_limit is None
            else max(0, int(queue_limit))
        )
        self._gate = resilience.AdmissionGate(self.queue_limit)
        #: Backoff between reseed attempts; seeded so a chaos run's pause
        #: schedule reproduces.  Tests may swap ``retry_policy.sleep``.
        self.retry_policy = resilience.RetryPolicy(seed=0)
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None
        self._pool_versions: Tuple[int, int] = (-1, -1)
        self._arena: Optional[arena_module.DatasetArena] = None
        self._sync_log: List[TransitionDelta] = []
        self._sync_overflow = False
        self._listener_attached = False
        self._degraded = False
        #: The typed error that forced degradation (``None`` while healthy).
        self.last_failure: Optional[RkNNTError] = None
        #: Pools spawned over this executor's lifetime (1 = never reseeded);
        #: the serving tests and benchmark read it to prove reuse.
        self.pools_spawned = 0
        #: Worker-crash recoveries performed by the retry loop.
        self.crash_recoveries = 0
        #: Sync-log corruptions recovered by reseeding.
        self.sync_recoveries = 0
        #: Failed pool reseeds (arena publish / pickle / spawn broke).
        self.reseed_failures = 0
        #: Batches answered in process after degradation.
        self.degraded_runs = 0
        #: Pools seeded with a :class:`~repro.engine.store.StoreHandle`
        #: instead of a context pickle (O(1) worker boot).
        self.store_seeds = 0
        #: Store seeds that failed in a worker and were recovered by
        #: reseeding with the full pickle (answers identical).
        self.store_fallbacks = 0
        #: Bytes of the last pool seed's per-worker payload (the pickled
        #: store handle, or the pickled context); benchmarks and the
        #: payload-size tests read it.
        self.last_seed_nbytes = 0
        #: Sticky until :meth:`close`: once a store seed failed, every
        #: reseed of this executor ships the full pickle.
        self._store_seed_failed = False

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _context_versions(self) -> Tuple[int, int]:
        return (
            self.context.route_index.version,
            self.context.transition_index.version,
        )

    def _on_transition_delta(self, delta: TransitionDelta) -> None:
        """Record parent-side transition churn for worker sync."""
        if self._sync_overflow:
            return
        self._sync_log.append(delta)
        if len(self._sync_log) > SYNC_DELTA_LIMIT:
            self._sync_overflow = True
            self._sync_log.clear()

    def _attach_listener(self) -> None:
        if not self._listener_attached:
            self.context.transition_index.add_listener(self._on_transition_delta)
            self._listener_attached = True

    def _detach_listener(self) -> None:
        if self._listener_attached:
            self.context.transition_index.remove_listener(self._on_transition_delta)
            self._listener_attached = False

    def _arena_enabled(self) -> bool:
        if self.use_arena is not None:
            return self.use_arena
        return arena_module.arena_enabled() is not False

    def _store_seed_handle(self):
        """The store handle a reseed may ship instead of the context pickle.

        ``None`` unless the context is store-backed, the indexes are still
        at the handle's packed versions (dynamic updates since the pack
        invalidate the file's view of the world), and no earlier store
        seed failed on this executor.
        """
        if self._store_seed_failed:
            return None
        handle = getattr(self.context, "store_handle", None)
        if handle is None or not handle.matches(self.context):
            return None
        return handle

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        route_version = self.context.route_index.version
        if self._pool is not None and (
            route_version != self._pool_versions[0] or self._sync_overflow
        ):
            # Route mutations change the geometry every worker-side cache
            # and the arena were built against, and an overflowed sync log
            # can no longer prove delta coverage: reseed.  Transition-only
            # churn never lands here — it is delta-synced per task.
            self.close()
        if self._pool is None:
            # Listen *before* pickling: a delta recorded here and also
            # baked into the pickle is harmless (workers skip already-
            # applied versions), a delta missed entirely would not be.
            self._attach_listener()
            self._sync_log = []
            self._sync_overflow = False
            try:
                faults.fire(faults.RESEED_FAIL)
                if self._arena_enabled():
                    forced = self.use_arena is True
                    self._arena = arena_module.publish_arena(
                        self.context,
                        min_bytes=0 if forced else None,
                        force=forced,
                    )
                store_handle = self._store_seed_handle()
                if store_handle is not None:
                    # O(1) seed: workers attach the persistent store file
                    # instead of unpickling the whole context.
                    payload = None
                    self.last_seed_nbytes = len(
                        pickle.dumps(store_handle, protocol=pickle.HIGHEST_PROTOCOL)
                    )
                    self.store_seeds += 1
                else:
                    payload = pickle.dumps(
                        self.context, protocol=pickle.HIGHEST_PROTOCOL
                    )
                    self.last_seed_nbytes = len(payload)
                handle = self._arena.handle if self._arena is not None else None
                self._pool = concurrent.futures.ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=multiprocessing.get_context(self.start_method),
                    initializer=_initialize_worker,
                    initargs=(payload, handle, faults.current(), store_handle),
                )
            except Exception as exc:
                # Roll the half-seeded state back so the next attempt (or
                # the degraded fallback) starts clean.
                if self._arena is not None:
                    self._arena.close()
                    self._arena = None
                self._detach_listener()
                if isinstance(exc, faults.FaultSpecError):
                    # A malformed RKNNT_FAULTS spec must stay loud — were
                    # it wrapped as a ReseedError the retry loop would
                    # swallow it and the chaos run would inject nothing.
                    raise
                raise ReseedError(
                    "pool reseed failed",
                    workers=self.workers,
                    start_method=self.start_method,
                ) from exc
            self._pool_versions = (route_version, self.context.transition_index.version)
            self.pools_spawned += 1
        return self._pool

    def _current_sync(self) -> Sync:
        """Sync payload bringing any worker up to the current transition
        version (``None`` when the pool seed is already current)."""
        target = self.context.transition_index.version
        if target == self._pool_versions[1] and not self._sync_log:
            return None
        deltas = tuple(self._sync_log)
        if deltas and faults.fire(faults.SYNC_CORRUPT):
            # Injected log corruption: drop the newest delta, so the worker
            # replay deterministically falls short of the target version.
            deltas = deltas[:-1]
        return (target, deltas)

    @property
    def arena(self) -> Optional[arena_module.DatasetArena]:
        """The currently published dataset arena (``None`` off/fallback)."""
        return self._arena

    @property
    def degraded(self) -> bool:
        """True once the executor answers in process (reseed budget spent)."""
        return self._degraded

    def close(self) -> None:
        """Shut the pool down and destroy the published arena (idempotent).

        Also resets degradation: a closed executor starts its next batch
        healthy, on a fresh pool.  Unlinking the segment while late workers
        still map it is safe: the OS keeps the backing memory alive until
        the last detach, and new pools publish a fresh segment.
        """
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        self._reset_pool_state()
        self._degraded = False
        self.last_failure = None
        self._store_seed_failed = False

    def _reset_pool_state(self) -> None:
        if self._arena is not None:
            self._arena.close()
            self._arena = None
        self._detach_listener()
        self._sync_log = []
        self._sync_overflow = False
        self._pool_versions = (-1, -1)

    def _abort_pool(self) -> None:
        """Tear the pool down *hard*: cancel queued tasks and terminate
        workers instead of waiting for them — the deadline path must not
        block behind a worker that may never return."""
        pool, self._pool = self._pool, None
        if pool is not None:
            processes = list((getattr(pool, "_processes", None) or {}).values())
            pool.shutdown(wait=False, cancel_futures=True)
            for process in processes:
                if process.is_alive():
                    process.terminate()
            for process in processes:
                process.join(timeout=1.0)
        self._reset_pool_state()

    def __enter__(self) -> "ShardedExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _shard_payloads(
        self, jobs: List[ShardJob], k: int, plan: QueryPlan, semantics: Semantics
    ) -> List[Tuple[Tuple[int, ...], Any]]:
        """Cut the workload into shard tasks, each naming its job indices.

        The default order is the workload order; ``RKNNT_SHARD_BY=cluster``
        first reorders the indices cluster-contiguously so each shard holds
        spatially nearby queries.  Shards carry explicit index tuples (not a
        base offset) so either order scatters back identically.
        """
        if self.chunk_size is not None:
            chunk = self.chunk_size
        else:
            # ~4 shards per worker: enough slack that an unlucky shard of
            # expensive queries does not leave the other workers idle.
            chunk = max(1, math.ceil(len(jobs) / (self.workers * 4)))
        order = list(range(len(jobs)))
        if shard_by() == SHARD_BY_CLUSTER:
            cell = dataset_cell_size(self.context)
            order = [
                index for cluster in cluster_jobs(jobs, cell) for index in cluster
            ]
        payloads: List[Tuple[Tuple[int, ...], Any]] = []
        for start in range(0, len(order), chunk):
            indices = tuple(order[start : start + chunk])
            payloads.append(
                (indices, ([jobs[i] for i in indices], k, plan, semantics))
            )
        return payloads

    def _collect(
        self,
        pool: concurrent.futures.ProcessPoolExecutor,
        fn: Callable,
        payloads: List[Tuple[int, Any]],
        sync: Sync,
        deadline: Optional[Deadline],
    ) -> List[Tuple[int, Any]]:
        """Submit every task and gather results, windowed and time-bounded.

        Submission happens in windows of at most ``queue_limit`` futures
        (all at once when unbounded), so a bounded executor never buffers
        more than its admission limit.  Each ``future.result`` wait is
        capped by the deadline's remaining budget; on expiry the pool is
        aborted (hung workers terminated) and
        :class:`~repro.engine.resilience.DeadlineExceeded` raised.
        """
        window = self.queue_limit if self.queue_limit > 0 else len(payloads)
        gathered: List[Tuple[int, Any]] = []
        with self._gate.admitted(len(payloads), what="batch"):
            for start in range(0, len(payloads), window):
                if deadline is not None:
                    deadline.check("batch")
                futures = [
                    pool.submit(fn, (base_index, payload, sync))
                    for base_index, payload in payloads[start : start + window]
                ]
                for future in futures:
                    timeout = (
                        None if deadline is None else max(0.0, deadline.remaining())
                    )
                    try:
                        gathered.append(future.result(timeout=timeout))
                    except concurrent.futures.TimeoutError:
                        self._abort_pool()
                        raise DeadlineExceeded(
                            "batch exceeded its deadline with tasks in flight",
                            budget_ms=deadline.budget_ms,
                            completed=len(gathered),
                            tasks=len(payloads),
                        ) from None
        return gathered

    def _submit_all(
        self,
        fn: Callable,
        payloads: List[Tuple[int, Any]],
        deadline: Optional[Deadline] = None,
    ) -> List[Tuple[int, Any]]:
        """Run every ``(base_index, payload)`` task under the retry policy.

        A worker dying mid-task (OOM kill, segfault, ``os._exit``) breaks
        the whole ``ProcessPoolExecutor``; a corrupted sync log surfaces as
        a :class:`~repro.engine.resilience.SyncLogError` from the replay.
        Tasks are pure and sync replay is idempotent, so both recover the
        same way: reseed the pool and replay the workload, up to
        ``RKNNT_MAX_RESEEDS`` consecutive times with jittered backoff
        between attempts.  Past the budget the last typed failure
        propagates (the caller degrades to in-process execution).
        """
        budget = resilience.max_reseeds()
        attempt = 0
        while True:
            if deadline is not None:
                deadline.check("batch")
            failure: RkNNTError
            try:
                pool = self._ensure_pool()
                sync = self._current_sync()
                # A pool broken by an earlier crash raises at submit time,
                # one broken mid-run raises from result(): both recover.
                results = self._collect(pool, fn, payloads, sync, deadline)
                self.retry_policy.reset()
                return results
            except BrokenProcessPool as exc:
                self.close()
                self.crash_recoveries += 1
                failure = WorkerCrashError(
                    "pool worker crashed mid-batch",
                    attempt=attempt,
                    tasks=len(payloads),
                )
                failure.__cause__ = exc
            except StoreError as exc:
                # A worker could not attach the store file this pool was
                # seeded with (file vanished/corrupted since, or an injected
                # ``store_attach`` fault).  Recover exactly like a sync-log
                # corruption — reseed and replay — but ship the full pickle
                # from now on: the file is evidently not trustworthy.
                self.close()
                self._store_seed_failed = True
                self.store_fallbacks += 1
                _LOGGER.warning(
                    "store seed failed, reseeding with the pickle path: %s", exc
                )
                failure = exc
            except SyncLogError as exc:
                self.close()
                self.sync_recoveries += 1
                failure = exc
            except ReseedError as exc:
                self.reseed_failures += 1
                failure = exc
            if attempt >= budget:
                raise failure
            attempt += 1
            self.retry_policy.pause(deadline)

    def _degrade(self, failure: RkNNTError) -> None:
        """Give up on the pool for this executor's remaining lifetime (until
        :meth:`close`) and answer in process — identical results, reduced
        throughput."""
        self.close()
        self._degraded = True
        self.last_failure = failure
        _LOGGER.warning(
            "serving pool degraded to in-process execution after %s", failure
        )

    def run(
        self,
        jobs: Sequence[ShardJob],
        k: int,
        plan: QueryPlan,
        semantics: Union[Semantics, str] = EXISTS,
        deadline: Optional[Deadline] = None,
    ) -> List[RkNNTResult]:
        """Answer every job of the workload, preserving workload order.

        ``jobs`` pairs each query's normalised points with its excluded
        route ids.  The return list is index-aligned with ``jobs`` — shard
        completion order never leaks into the results.  ``deadline`` bounds
        the whole batch; :class:`~repro.engine.resilience.DeadlineExceeded`
        and :class:`~repro.engine.resilience.PoolSaturated` propagate to
        the caller, every other pool failure is absorbed by retrying and,
        past the budget, by degrading to the identical in-process path.
        """
        semantics = Semantics.coerce(semantics)
        # Resolve every "auto" knob in the parent so each worker runs the
        # exact plan the serial path would have run.
        plan = plan.resolved()
        job_list = list(jobs)
        if not job_list:
            return []
        if self._degraded:
            return self._run_serial(job_list, k, plan, semantics, deadline)
        payloads = self._shard_payloads(job_list, k, plan, semantics)
        try:
            shard_results = self._submit_all(_run_shard, payloads, deadline=deadline)
        except (DeadlineExceeded, PoolSaturated):
            raise
        except (RkNNTError, BrokenProcessPool) as exc:
            self._degrade(exc)
            return self._run_serial(job_list, k, plan, semantics, deadline)
        results: List[Optional[RkNNTResult]] = [None] * len(job_list)
        # Counter deltas are merged only here, after ``_submit_all`` has
        # fully succeeded — its internal crash retry replays whole
        # workloads, so merging inside the loop could double-count.
        for indices, shard, delta in shard_results:
            for index, result in zip(indices, shard):
                results[index] = result
            self.context.merge_counters(delta)
        assert all(result is not None for result in results)
        return results  # type: ignore[return-value]

    def run_handle(
        self,
        jobs: Sequence[ShardJob],
        k: int,
        plan: QueryPlan,
        semantics: Union[Semantics, str] = EXISTS,
        deadline: Optional[Deadline] = None,
    ) -> BatchHandle:
        """:meth:`run` on a background dispatch thread.

        Returns immediately with a :class:`BatchHandle` whose future
        resolves to the workload-ordered result list (or the typed
        failure :meth:`run` would have raised).  Callers must not start a
        second handle before the first resolves — the executor serialises
        batches by design, and the server's dispatcher enforces exactly
        that.
        """
        return BatchHandle(
            lambda: self.run(jobs, k, plan, semantics, deadline=deadline)
        )

    def _run_serial(
        self,
        job_list: List[ShardJob],
        k: int,
        plan: QueryPlan,
        semantics: Semantics,
        deadline: Optional[Deadline],
    ) -> List[RkNNTResult]:
        """The degraded path: the exact code ``workers=0`` runs, in process.

        Routed through the locality-aware batch loop like the processor's
        serial path — with ``RKNNT_LOCALITY`` off it degenerates to one
        ``execute`` call per job, deadline-checked between jobs either way.
        """
        self.degraded_runs += 1
        return execute_batch(
            self.context, job_list, k, plan, semantics, deadline=deadline
        )

    def run_standing(
        self,
        jobs: Sequence[Tuple[Any, ...]],
        deadline: Optional[Deadline] = None,
    ) -> List[Any]:
        """Rebuild a batch of standing queries in the pool, workload-ordered.

        Each job is ``(sub_queries, k, plan, excluded)`` — one per
        subscription; the per-subscription result is a list of
        ``(confirmed map, stats, filter set)`` tuples ready for
        :meth:`repro.engine.continuous.Subscription` to re-install.  One
        task per subscription: standing rebuilds are heavyweight, so load
        balance beats batching.  The failure policy matches :meth:`run`.
        """
        job_list = list(jobs)
        if not job_list:
            return []
        if self._degraded:
            return self._standing_serial(job_list, deadline)
        payloads = [
            (index, (sub_queries, k, plan.resolved(), excluded))
            for index, (sub_queries, k, plan, excluded) in enumerate(job_list)
        ]
        try:
            gathered = self._submit_all(_run_standing, payloads, deadline=deadline)
        except (DeadlineExceeded, PoolSaturated):
            raise
        except (RkNNTError, BrokenProcessPool) as exc:
            self._degrade(exc)
            return self._standing_serial(job_list, deadline)
        results: List[Any] = [None] * len(job_list)
        for base_index, parts in gathered:
            results[base_index] = parts
        return results

    def _standing_serial(
        self, job_list: List[Tuple[Any, ...]], deadline: Optional[Deadline]
    ) -> List[Any]:
        self.degraded_runs += 1
        results = []
        for sub_queries, k, plan, excluded in job_list:
            if deadline is not None:
                deadline.check("standing rebuild")
            results.append(
                standing_parts(self.context, (sub_queries, k, plan.resolved(), excluded))
            )
        return results

    def __repr__(self) -> str:
        state = "degraded" if self._degraded else (
            "open" if self._pool is not None else "idle"
        )
        arena = self._arena.name if self._arena is not None else None
        return (
            f"ShardedExecutor(workers={self.workers}, "
            f"start_method={self.start_method!r}, arena={arena!r}, {state})"
        )
