"""Wire protocol of the network serving front-end.

One TCP connection carries a bidirectional stream of **newline-framed
JSON objects** (UTF-8, one object per line, ``\\n`` terminated).  The
framing is deliberately primitive: every language has a socket, a line
reader and a JSON parser, so a client is ~20 lines in anything (see
:class:`repro.cli.LineClient` for the reference implementation).

Client → server, every request carries a client-chosen integer ``id``::

    {"id": 1, "op": "query",  "points": [[3.0, 4.0], [5.0, 4.5]],
     "k": 5, "method": "voronoi", "semantics": "exists"}
    {"id": 2, "op": "insert", "transition":
        {"id": 901, "origin": [1.0, 2.0], "destination": [3.0, 4.0]}}
    {"id": 3, "op": "delete", "transition_id": 901}
    {"id": 4, "op": "watch",  "points": [[3.0, 4.0]], "k": 5}
    {"id": 5, "op": "unwatch", "watch": 0}
    {"id": 6, "op": "ping"}
    {"id": 7, "op": "stats"}

Server → client, exactly one reply per request (``id`` echoed, in
per-connection request order)::

    {"id": 1, "ok": true, "seq": 17, "version": 3, "result":
        {"transitions": [12, 40], "endpoints": {"12": "od", "40": "o"}}}
    {"id": 3, "ok": false, "error":
        {"code": "bad_update", "message": "transition id 901 not in dataset"}}

plus, on connections with live ``watch`` subscriptions, unsolicited
**events** — distinguishable from replies because they carry an
``"event"`` key and no ``"id"``::

    {"event": "delta", "watch": 0, "cause": "insert",
     "added": [901], "removed": [], "version": 4}

Error replies never close the connection and never leak Python class
names: the ``code`` is the stable
:func:`~repro.engine.resilience.wire_code` of the failure
(``bad_request``, ``bad_update``, ``pool_saturated``,
``deadline_exceeded``, ``internal``, …).

This module is the *pure* half of the protocol — request validation and
reply/event encoding with no I/O — so it is testable without a socket
and reusable by any future transport.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.plan import METHODS
from repro.engine.resilience import RkNNTError, wire_code
from repro.geometry.kernels import BACKEND_AUTO, BACKEND_NUMPY, BACKEND_PYTHON

#: Protocol revision, reported by ``ping``/``stats`` replies.  Bump only
#: on incompatible changes; additive fields are free.
PROTOCOL_VERSION = 1

#: Hard bound on one request line (bytes, before parsing).  A line this
#: long is a broken or hostile client, not a query.
MAX_LINE_BYTES = 1 << 20

SEMANTICS_NAMES = ("exists", "forall")
BACKEND_NAMES = (BACKEND_AUTO, BACKEND_NUMPY, BACKEND_PYTHON)

#: Every operation a request may carry.
OPS = ("query", "insert", "delete", "watch", "unwatch", "ping", "stats")


class ProtocolError(RkNNTError):
    """A request line that violates the wire contract (not valid JSON,
    unknown op, malformed fields).  The line is answered with a typed
    ``bad_request`` error reply and the connection stays open."""

    wire_code = "bad_request"


@dataclass(frozen=True)
class Request:
    """One validated client request.

    Field presence depends on ``op``: ``points``/``k``/``method``/
    ``semantics``/``backend``/``exclude`` for ``query`` and ``watch``,
    ``transition`` for ``insert``, ``transition_id`` for ``delete``,
    ``watch_id`` for ``unwatch``.  ``ping``/``stats`` carry nothing.
    """

    id: int
    op: str
    points: Optional[List[Tuple[float, float]]] = None
    k: Optional[int] = None
    method: Optional[str] = None
    semantics: Optional[str] = None
    backend: Optional[str] = None
    exclude: Tuple[int, ...] = ()
    transition: Optional[Tuple[int, Tuple[float, float], Tuple[float, float]]] = None
    transition_id: Optional[int] = None
    watch_id: Optional[int] = None
    raw: Dict[str, Any] = field(default_factory=dict, repr=False)


def _require_int(obj: Dict[str, Any], key: str, minimum: Optional[int] = None) -> int:
    value = obj.get(key)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"field {key!r} must be an integer", field=key)
    if minimum is not None and value < minimum:
        raise ProtocolError(f"field {key!r} must be >= {minimum}", field=key)
    return value


def _coerce_point(value: Any, key: str) -> Tuple[float, float]:
    if (
        not isinstance(value, (list, tuple))
        or len(value) != 2
        or any(isinstance(c, bool) or not isinstance(c, (int, float)) for c in value)
    ):
        raise ProtocolError(f"field {key!r} must be an [x, y] number pair", field=key)
    return (float(value[0]), float(value[1]))


def _coerce_points(obj: Dict[str, Any]) -> List[Tuple[float, float]]:
    value = obj.get("points")
    if not isinstance(value, list) or not value:
        raise ProtocolError(
            "field 'points' must be a non-empty list of [x, y] pairs",
            field="points",
        )
    return [_coerce_point(point, "points") for point in value]


def _coerce_choice(obj: Dict[str, Any], key: str, choices: Tuple[str, ...]) -> Optional[str]:
    value = obj.get(key)
    if value is None:
        return None
    if value not in choices:
        raise ProtocolError(
            f"field {key!r} must be one of {sorted(choices)}", field=key
        )
    return value


def _coerce_exclude(obj: Dict[str, Any]) -> Tuple[int, ...]:
    value = obj.get("exclude")
    if value is None:
        return ()
    if not isinstance(value, list) or any(
        isinstance(route_id, bool) or not isinstance(route_id, int)
        for route_id in value
    ):
        raise ProtocolError(
            "field 'exclude' must be a list of integer route ids",
            field="exclude",
        )
    return tuple(value)


def _coerce_transition(
    obj: Dict[str, Any],
) -> Tuple[int, Tuple[float, float], Tuple[float, float]]:
    value = obj.get("transition")
    if not isinstance(value, dict):
        raise ProtocolError(
            "field 'transition' must be an object with id/origin/destination",
            field="transition",
        )
    transition_id = _require_int(value, "id")
    origin = _coerce_point(value.get("origin"), "transition.origin")
    destination = _coerce_point(value.get("destination"), "transition.destination")
    return (transition_id, origin, destination)


def request_id_of(line: str) -> Optional[int]:
    """Best-effort ``id`` extraction from a raw line, for error replies.

    When :func:`decode_request` rejects a line the server still wants to
    echo the client's ``id`` if one is salvageable, so the client can
    correlate the failure; returns ``None`` when it is not.
    """
    try:
        obj = json.loads(line)
    except (ValueError, TypeError):
        return None
    if isinstance(obj, dict):
        value = obj.get("id")
        if isinstance(value, int) and not isinstance(value, bool):
            return value
    return None


def decode_request(line: str) -> Request:
    """Parse and validate one request line.

    Raises :class:`ProtocolError` on any violation — never returns a
    partially-valid request, so downstream code can trust every field.
    """
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError("request line too long", limit=MAX_LINE_BYTES)
    try:
        obj = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError("request must be a JSON object")
    op = obj.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; expected one of {sorted(OPS)}")
    request_id = _require_int(obj, "id", minimum=0)

    if op in ("query", "watch"):
        return Request(
            id=request_id,
            op=op,
            points=_coerce_points(obj),
            k=(None if obj.get("k") is None else _require_int(obj, "k", minimum=1)),
            method=_coerce_choice(obj, "method", METHODS),
            semantics=_coerce_choice(obj, "semantics", SEMANTICS_NAMES),
            backend=_coerce_choice(obj, "backend", BACKEND_NAMES),
            exclude=_coerce_exclude(obj),
            raw=obj,
        )
    if op == "insert":
        return Request(
            id=request_id, op=op, transition=_coerce_transition(obj), raw=obj
        )
    if op == "delete":
        return Request(
            id=request_id,
            op=op,
            transition_id=_require_int(obj, "transition_id"),
            raw=obj,
        )
    if op == "unwatch":
        return Request(
            id=request_id, op=op, watch_id=_require_int(obj, "watch", minimum=0), raw=obj
        )
    return Request(id=request_id, op=op, raw=obj)


# ----------------------------------------------------------------------
# Encoding (server → client)
# ----------------------------------------------------------------------
def encode_line(payload: Dict[str, Any]) -> bytes:
    """One reply/event as a newline-terminated UTF-8 JSON line.

    Keys are sorted so the encoding is deterministic — the differential
    tests compare raw reply payloads across runs.
    """
    return (json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n").encode(
        "utf-8"
    )


def result_payload(result: Any) -> Dict[str, Any]:
    """Serialize an :class:`~repro.core.result.RkNNTResult`.

    Transition ids are sorted and the per-endpoint map uses string keys
    (JSON objects cannot carry integer keys) with the endpoint labels
    joined in sorted order — the encoding is canonical, so two equal
    results always serialize identically.
    """
    return {
        "transitions": sorted(result.transition_ids),
        "endpoints": {
            str(tid): "".join(sorted(labels))
            for tid, labels in sorted(result.confirmed_endpoints.items())
        },
    }


def ok_reply(request_id: int, **fields: Any) -> Dict[str, Any]:
    payload: Dict[str, Any] = {"id": request_id, "ok": True}
    payload.update(fields)
    return payload


def error_reply(request_id: Optional[int], error: BaseException) -> Dict[str, Any]:
    """A typed error reply: stable ``code`` plus a human-readable message.

    ``str(error)`` of an :class:`~repro.engine.resilience.RkNNTError`
    includes its structured context, so the shard/attempt detail crosses
    the wire without any schema for it.
    """
    return {
        "id": request_id,
        "ok": False,
        "error": {"code": wire_code(error), "message": str(error)},
    }


def delta_event(watch_id: int, delta: Any) -> Dict[str, Any]:
    """Serialize a :class:`~repro.engine.continuous.ResultDelta` push."""
    return {
        "event": "delta",
        "watch": watch_id,
        "cause": delta.cause,
        "added": sorted(delta.added),
        "removed": sorted(delta.removed),
        "version": delta.version,
    }
