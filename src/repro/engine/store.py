"""Persistent memory-mapped columnar store: O(1) cold start from one file.

The columnar dataset core (:mod:`repro.engine.columnar`) already packs
every dataset-sized structure into flat int32/float64 columns with offset
tables — but a cold start still pickle-decodes all of them, and a serving
reseed still ships the whole payload to every worker.  This module writes
those columns to a **single on-disk file** that loads by ``mmap``:

* :func:`save` serialises the existing ``to_columns()`` output
  (``RouteIndexColumns`` + ``TransitionIndexColumns``) into one file —
  magic + format version + checksummed header, a :class:`ColumnSpec`
  offset table, float64 regions before int32 regions (the same alignment
  discipline as the shared-memory arena segments of
  :mod:`repro.engine.arena`);
* :func:`open_store` maps the file read-only and exposes the columns as
  zero-copy numpy views over one ``mmap`` — no per-column copy, no
  decode.  Opening is O(1) in dataset size: the OS pages columns in on
  demand, which is also what lets datasets exceed RAM;
* :func:`attach_context` is the worker-side boot path: a reseed ships a
  tiny picklable :class:`StoreHandle` (path + layout + expected versions)
  instead of a columnar pickle, and the worker attaches the file exactly
  the way it attaches an arena segment.

File layout (all little-endian)::

    ┌────────────────────────────────────────────────────────────┐
    │ preamble: magic (8s) · format version (u32) ·              │
    │           meta length (u32) · meta CRC32 (u32)             │
    │ meta: canonical JSON (sorted keys) — scalars, versions,    │
    │       and the ColumnSpec offset table                      │
    │ zero padding to the next 8-byte boundary                   │
    ├────────────────────────────────────────────────────────────┤
    │ float64 columns (route points, tree entry points, PList    │
    │ points, transition coords, timestamps) — 8-byte aligned    │
    │ int32 columns (ids, offset tables, tree structure, masks)  │
    │ uint8 columns (route-name bytes)                           │
    └────────────────────────────────────────────────────────────┘

Every float64 region holds whole 8-byte rows and the regions are packed
f64 → i32 → u8, so every view stays naturally aligned without per-column
padding.  The meta blob is canonical JSON (sorted keys, no whitespace)
and every id column is sorted, so the same logical dataset always
produces byte-identical files — ``tests/test_store.py`` asserts it.

Failure contract: every way a store can fail to write, open or validate
(missing file, truncated preamble, checksum mismatch, unsupported format
version, layout drift, numpy unavailable) raises a typed
:class:`~repro.engine.resilience.StoreError`, and callers degrade to the
pickle path exactly like :class:`~repro.engine.resilience
.ArenaAttachError` — identical answers, never a crash.  The
``store_attach`` injection point (:mod:`repro.engine.faults`) drives that
degradation deterministically in the chaos suite.

>>> from repro.engine.store import MAGIC, FORMAT_VERSION, ColumnSpec
>>> (len(MAGIC), FORMAT_VERSION)
(8, 1)
>>> ColumnSpec("plist_offsets", "i32", offset=128, rows=7).nbytes
28
>>> from repro.engine.resilience import StoreError, RkNNTError
>>> issubclass(StoreError, RkNNTError)
True
>>> StoreError("store attach failed").wire_code
'store_attach_failed'
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import tempfile
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.engine import faults
from repro.engine.columnar import (
    NListColumns,
    PListColumns,
    RouteColumns,
    RouteIndexColumns,
    TransitionColumns,
    TransitionIndexColumns,
    TreeColumns,
)
from repro.engine.resilience import StoreError
from repro.geometry import kernels

#: First 8 bytes of every store file (the trailing byte versions the
#: magic itself, so a future incompatible layout can change it).
MAGIC = b"RKNNTCS\x00"

#: On-disk format version.  Bump on any layout change; :func:`open_store`
#: rejects files written by a different version with a typed
#: :class:`~repro.engine.resilience.StoreError` (never a misread).
FORMAT_VERSION = 1

#: Preamble: magic, format version, meta length, meta CRC32 (little-endian).
_PREAMBLE = struct.Struct("<8sIII")

#: Data-region alignment: float64 views need 8-byte alignment.
ALIGNMENT = 8

#: Column kinds of the offset table.
KIND_F64 = "f64"
KIND_I32 = "i32"
KIND_U8 = "u8"

_ITEMSIZE = {KIND_F64: 8, KIND_I32: 4, KIND_U8: 1}


def _align(offset: int) -> int:
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


@dataclass(frozen=True)
class ColumnSpec:
    """One column of the store: where it lives and how to view it.

    ``offset`` is relative to the start of the data region (which begins
    at the first 8-byte boundary after the meta blob).  ``cols`` is the
    row width of a float64 matrix column and ``0`` for flat i32/u8
    columns.
    """

    key: str
    kind: str
    offset: int
    rows: int
    cols: int = 0

    @property
    def nbytes(self) -> int:
        width = self.cols if self.cols else 1
        return self.rows * width * _ITEMSIZE[self.kind]

    def to_meta(self) -> List[Any]:
        return [self.key, self.kind, self.offset, self.rows, self.cols]

    @classmethod
    def from_meta(cls, row: Sequence[Any]) -> "ColumnSpec":
        key, kind, offset, rows, cols = row
        return cls(str(key), str(kind), int(offset), int(rows), int(cols))


@dataclass(frozen=True)
class StoreHandle:
    """Everything a reseed ships instead of a columnar pickle.

    A handle is a few hundred bytes regardless of dataset size — path,
    expected file size, the index versions the file was packed at, and
    the column offset table.  :func:`attach` re-reads the file's own
    (checksummed) header and cross-checks it against the handle, so a
    file that was rewritten, truncated or repacked since the handle was
    minted is rejected with a typed error instead of being misread.
    """

    path: str
    nbytes: int
    route_version: int
    transition_version: int
    columns: Tuple[ColumnSpec, ...]

    def matches(self, context) -> bool:
        """True while ``context``'s indexes are still at the packed
        versions — dynamic updates since the pack invalidate the file."""
        return (
            self.route_version == context.route_index.version
            and self.transition_version == context.transition_index.version
        )


# ----------------------------------------------------------------------
# Lazy metadata columns (names / timestamps)
# ----------------------------------------------------------------------
class _LazyNames:
    """Route names decoded per access from the packed u8/offset columns.

    Keeping names out of the JSON meta keeps :func:`open_store` O(1) in
    dataset size; consumers only ever index (``columns.names[i]``), and
    decoding happens when — and only when — the routes materialise.
    Pickles as a plain tuple, so a fallback reseed that re-pickles
    store-backed columns never drags a buffer view along.
    """

    __slots__ = ("_offsets", "_blob", "_mask")

    def __init__(self, offsets, blob, mask):
        self._offsets = offsets
        self._blob = blob
        self._mask = mask

    def __len__(self) -> int:
        return len(self._mask)

    def __getitem__(self, index: int) -> Optional[str]:
        if int(self._mask[index]) == 0:
            return None
        start = int(self._offsets[index])
        end = int(self._offsets[index + 1])
        return bytes(self._blob[start:end]).decode("utf-8")

    def __iter__(self):
        return (self[index] for index in range(len(self)))

    def __reduce__(self):
        return (tuple, (tuple(self),))


class _LazyTimestamps:
    """Transition timestamps decoded per access from the f64/mask columns."""

    __slots__ = ("_values", "_mask")

    def __init__(self, values, mask):
        self._values = values
        self._mask = mask

    def __len__(self) -> int:
        return len(self._mask)

    def __getitem__(self, index: int) -> Optional[float]:
        if int(self._mask[index]) == 0:
            return None
        return float(self._values[index][0])

    def __iter__(self):
        return (self[index] for index in range(len(self)))

    def __reduce__(self):
        return (tuple, (tuple(self),))


# ----------------------------------------------------------------------
# Saving
# ----------------------------------------------------------------------
def _column_arrays(
    routes: RouteIndexColumns, transitions: TransitionIndexColumns
) -> Tuple[List[Tuple[str, Any]], List[Tuple[str, Any]], List[Tuple[str, bytes]]]:
    """The store's columns in layout order: (f64, i32, u8) groups."""
    name_blob = bytearray()
    name_offsets: List[int] = [0]
    name_mask: List[int] = []
    for name in routes.routes.names:
        if name is not None:
            name_blob.extend(name.encode("utf-8"))
            name_mask.append(1)
        else:
            name_mask.append(0)
        name_offsets.append(len(name_blob))
    stamp_values: List[Tuple[float]] = []
    stamp_mask: List[int] = []
    for stamp in transitions.transitions.timestamps:
        stamp_values.append((float(stamp) if stamp is not None else 0.0,))
        stamp_mask.append(0 if stamp is None else 1)

    f64_columns = [
        ("route_points", routes.routes.points),
        ("rtree_entry_points", routes.tree.entry_points),
        ("plist_points", routes.plist.points),
        ("transition_coords", transitions.transitions.coords),
        ("ttree_entry_points", transitions.tree.entry_points),
        ("transition_timestamps", kernels.pack_points(stamp_values)),
    ]
    i32_columns = [
        ("route_ids", routes.routes.ids),
        ("route_offsets", routes.routes.offsets),
        ("route_name_offsets", kernels.pack_i32(name_offsets)),
        ("route_name_mask", kernels.pack_i32(name_mask)),
        ("rtree_child_counts", routes.tree.child_counts),
        ("rtree_leaf_flags", routes.tree.leaf_flags),
        ("rtree_payload_offsets", routes.tree.payload_offsets),
        ("rtree_payload_values", routes.tree.payload_values),
        ("plist_offsets", routes.plist.offsets),
        ("plist_route_ids", routes.plist.route_ids),
        ("nlist_offsets", routes.nlist.offsets),
        ("nlist_route_ids", routes.nlist.route_ids),
        ("transition_ids", transitions.transitions.ids),
        ("transition_timestamp_mask", kernels.pack_i32(stamp_mask)),
        ("ttree_child_counts", transitions.tree.child_counts),
        ("ttree_leaf_flags", transitions.tree.leaf_flags),
        ("ttree_payload_offsets", transitions.tree.payload_offsets),
        ("ttree_payload_values", transitions.tree.payload_values),
    ]
    u8_columns = [("route_name_bytes", bytes(name_blob))]
    return f64_columns, i32_columns, u8_columns


def _tree_meta(tree: TreeColumns) -> Dict[str, Any]:
    return {
        "payload_kind": tree.payload_kind,
        "max_entries": tree.max_entries,
        "min_entries": tree.min_entries,
        "track_payload_union": tree.track_payload_union,
        "size": tree.size,
    }


def save(
    path: str,
    routes: RouteIndexColumns,
    transitions: TransitionIndexColumns,
) -> StoreHandle:
    """Write both indexes' columns to ``path`` as one store file.

    The write is atomic (temp file + ``os.replace``) so a crashed pack
    never leaves a half-written store where a valid one stood, and the
    output is byte-deterministic: the same logical dataset produces the
    identical file on every run.  Returns the :class:`StoreHandle` a
    serving reseed ships.  Raises :class:`~repro.engine.resilience
    .StoreError` when the numpy backend is unavailable (the packed
    columns must already be contiguous typed arrays) or the file cannot
    be written.
    """
    if not kernels.numpy_available():
        raise StoreError(
            "saving a store requires the numpy backend", path=str(path)
        )
    f64_columns, i32_columns, u8_columns = _column_arrays(routes, transitions)
    specs: List[ColumnSpec] = []
    blobs: List[bytes] = []
    offset = 0
    for key, array in f64_columns:
        rows, cols = array.shape
        specs.append(ColumnSpec(key, KIND_F64, offset, int(rows), int(cols)))
        blobs.append(array.tobytes())
        offset += len(blobs[-1])
    for key, array in i32_columns:
        specs.append(ColumnSpec(key, KIND_I32, offset, len(array)))
        blobs.append(array.tobytes())
        offset += len(blobs[-1])
    for key, blob in u8_columns:
        specs.append(ColumnSpec(key, KIND_U8, offset, len(blob)))
        blobs.append(blob)
        offset += len(blob)

    meta = {
        "route_index": {
            "version": routes.version,
            "max_entries": routes.max_entries,
            "excluded": list(routes.excluded),
            "dataset_version": routes.routes.version,
        },
        "rtree": _tree_meta(routes.tree),
        "transition_index": {
            "version": transitions.version,
            "max_entries": transitions.max_entries,
            "dataset_version": transitions.transitions.version,
        },
        "ttree": _tree_meta(transitions.tree),
        "columns": [spec.to_meta() for spec in specs],
    }
    meta_blob = json.dumps(meta, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )
    data_start = _align(_PREAMBLE.size + len(meta_blob))
    padding = b"\x00" * (data_start - _PREAMBLE.size - len(meta_blob))
    preamble = _PREAMBLE.pack(
        MAGIC, FORMAT_VERSION, len(meta_blob), zlib.crc32(meta_blob)
    )
    total = data_start + offset

    directory = os.path.dirname(os.path.abspath(path)) or "."
    try:
        fd, temp_path = tempfile.mkstemp(
            prefix=".store-", suffix=".tmp", dir=directory
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(preamble)
                handle.write(meta_blob)
                handle.write(padding)
                for blob in blobs:
                    handle.write(blob)
            os.replace(temp_path, path)
        except BaseException:
            os.unlink(temp_path)
            raise
    except OSError as exc:
        raise StoreError(
            "could not write store file", path=str(path)
        ) from exc
    return StoreHandle(
        path=os.path.abspath(path),
        nbytes=total,
        route_version=routes.version,
        transition_version=transitions.version,
        columns=tuple(specs),
    )


def save_indexes(path: str, route_index, transition_index) -> StoreHandle:
    """Pack two live indexes (via their cached ``to_columns()``) into a
    store file — the CLI ``pack`` command in library form."""
    return save(path, route_index.to_columns(), transition_index.to_columns())


# ----------------------------------------------------------------------
# Opening
# ----------------------------------------------------------------------
class Store:
    """An open store file: one read-only ``mmap`` plus zero-copy views.

    Column accessors return numpy views aliasing the mapping — no copy,
    read-only (a worker can never scribble over pages every other worker
    shares through the page cache).  The views keep the mapping alive, so
    indexes built over them may outlive the :class:`Store` object itself;
    :meth:`close` releases the mapping as soon as the last view dies.
    """

    def __init__(self, path: str, nbytes: int, meta: Dict[str, Any], mapping):
        self.path = path
        self.nbytes = nbytes
        self.meta = meta
        self._mmap = mapping
        self._data_start = meta.pop("__data_start__")
        self.columns: Dict[str, ColumnSpec] = {
            spec.key: spec
            for spec in (ColumnSpec.from_meta(row) for row in meta["columns"])
        }

    # -- raw views -----------------------------------------------------
    def _spec(self, key: str) -> ColumnSpec:
        spec = self.columns.get(key)
        if spec is None:
            raise StoreError("store file lacks a column", path=self.path, key=key)
        return spec

    def _f64(self, key: str):
        spec = self._spec(key)
        return kernels.view_f64(
            self._mmap, self._data_start + spec.offset, spec.rows, spec.cols
        )

    def _i32(self, key: str):
        spec = self._spec(key)
        return kernels.view_i32(self._mmap, self._data_start + spec.offset, spec.rows)

    def _u8(self, key: str):
        spec = self._spec(key)
        start = self._data_start + spec.offset
        return memoryview(self._mmap)[start : start + spec.rows]

    # -- assembled columns ---------------------------------------------
    def route_columns(self) -> RouteIndexColumns:
        """The RR-tree side as ``RouteIndexColumns`` over store views."""
        index_meta = self.meta["route_index"]
        return RouteIndexColumns(
            routes=RouteColumns(
                ids=self._i32("route_ids"),
                offsets=self._i32("route_offsets"),
                points=self._f64("route_points"),
                names=_LazyNames(  # type: ignore[arg-type]
                    self._i32("route_name_offsets"),
                    self._u8("route_name_bytes"),
                    self._i32("route_name_mask"),
                ),
                version=int(index_meta["dataset_version"]),
            ),
            tree=self._tree_columns("rtree", self.meta["rtree"]),
            plist=PListColumns(
                points=self._f64("plist_points"),
                offsets=self._i32("plist_offsets"),
                route_ids=self._i32("plist_route_ids"),
            ),
            nlist=NListColumns(
                offsets=self._i32("nlist_offsets"),
                route_ids=self._i32("nlist_route_ids"),
            ),
            version=int(index_meta["version"]),
            max_entries=int(index_meta["max_entries"]),
            excluded=tuple(int(route_id) for route_id in index_meta["excluded"]),
        )

    def transition_columns(self) -> TransitionIndexColumns:
        """The TR-tree side as ``TransitionIndexColumns`` over store views."""
        index_meta = self.meta["transition_index"]
        return TransitionIndexColumns(
            transitions=TransitionColumns(
                ids=self._i32("transition_ids"),
                coords=self._f64("transition_coords"),
                timestamps=_LazyTimestamps(  # type: ignore[arg-type]
                    self._f64("transition_timestamps"),
                    self._i32("transition_timestamp_mask"),
                ),
                version=int(index_meta["dataset_version"]),
            ),
            tree=self._tree_columns("ttree", self.meta["ttree"]),
            version=int(index_meta["version"]),
            max_entries=int(index_meta["max_entries"]),
        )

    def _tree_columns(self, prefix: str, tree_meta: Dict[str, Any]) -> TreeColumns:
        return TreeColumns(
            payload_kind=str(tree_meta["payload_kind"]),
            max_entries=int(tree_meta["max_entries"]),
            min_entries=int(tree_meta["min_entries"]),
            track_payload_union=bool(tree_meta["track_payload_union"]),
            size=int(tree_meta["size"]),
            child_counts=self._i32(f"{prefix}_child_counts"),
            leaf_flags=self._i32(f"{prefix}_leaf_flags"),
            entry_points=self._f64(f"{prefix}_entry_points"),
            payload_offsets=self._i32(f"{prefix}_payload_offsets"),
            payload_values=self._i32(f"{prefix}_payload_values"),
        )

    def handle(self) -> StoreHandle:
        """A reseed-shippable :class:`StoreHandle` for this store."""
        return StoreHandle(
            path=self.path,
            nbytes=self.nbytes,
            route_version=int(self.meta["route_index"]["version"]),
            transition_version=int(self.meta["transition_index"]["version"]),
            columns=tuple(
                ColumnSpec.from_meta(row) for row in self.meta["columns"]
            ),
        )

    def close(self) -> None:
        """Release the mapping (no-op while column views still alias it)."""
        try:
            self._mmap.close()
        except BufferError:
            # Live views still alias the mapping; it is released when the
            # last of them is collected (ndarray.base keeps it pinned).
            pass

    def __enter__(self) -> "Store":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"Store(path={self.path!r}, nbytes={self.nbytes})"


def _validate_meta(meta: Any, path: str, data_start: int, size: int) -> None:
    if not isinstance(meta, dict):
        raise StoreError("store meta is not a JSON object", path=path)
    for key in ("route_index", "rtree", "transition_index", "ttree", "columns"):
        if key not in meta:
            raise StoreError("store meta lacks a section", path=path, key=key)
    end = data_start
    for row in meta["columns"]:
        spec = ColumnSpec.from_meta(row)
        if spec.kind not in _ITEMSIZE:
            raise StoreError(
                "store column has an unknown kind", path=path, key=spec.key
            )
        end = max(end, data_start + spec.offset + spec.nbytes)
    if end != size:
        raise StoreError(
            "store file size does not match its column table "
            "(truncated or over-long file)",
            path=path,
            expected=end,
            actual=size,
        )


def open_store(path: str) -> Store:
    """Map a store file read-only and validate its header.

    O(1) in dataset size: reads the fixed preamble and the (small,
    constant-shape) meta blob, checks the CRC, and maps the rest — column
    bytes are paged in lazily by the OS on first access.  Every
    validation failure raises :class:`~repro.engine.resilience
    .StoreError` with structured context.
    """
    if not kernels.numpy_available():
        raise StoreError(
            "opening a store requires the numpy backend "
            "(pure-Python callers use the pickle path)",
            path=str(path),
        )
    path = os.path.abspath(path)
    try:
        handle = open(path, "rb")
    except OSError as exc:
        raise StoreError("could not open store file", path=path) from exc
    with handle:
        size = os.fstat(handle.fileno()).st_size
        head = handle.read(_PREAMBLE.size)
        if len(head) < _PREAMBLE.size:
            raise StoreError(
                "store file is truncated before its preamble",
                path=path,
                nbytes=size,
            )
        magic, version, meta_length, meta_crc = _PREAMBLE.unpack(head)
        if magic != MAGIC:
            raise StoreError(
                "not a store file (bad magic)", path=path, magic=magic.hex()
            )
        if version != FORMAT_VERSION:
            raise StoreError(
                "unsupported store format version",
                path=path,
                file_version=version,
                supported=FORMAT_VERSION,
            )
        meta_blob = handle.read(meta_length)
        if len(meta_blob) < meta_length:
            raise StoreError(
                "store file is truncated inside its meta blob",
                path=path,
                nbytes=size,
            )
        if zlib.crc32(meta_blob) != meta_crc:
            raise StoreError(
                "store meta checksum mismatch (corrupt header)", path=path
            )
        try:
            meta = json.loads(meta_blob.decode("utf-8"))
        except ValueError as exc:
            raise StoreError("store meta is not valid JSON", path=path) from exc
        data_start = _align(_PREAMBLE.size + meta_length)
        _validate_meta(meta, path, data_start, size)
        try:
            mapping = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (OSError, ValueError) as exc:
            raise StoreError("could not map store file", path=path) from exc
    meta["__data_start__"] = data_start
    return Store(path, size, meta, mapping)


def open_handle(path: str) -> StoreHandle:
    """Validate a store file and mint its :class:`StoreHandle` (O(1)).

    The boot-time twin of :func:`attach`: open, check the header, read the
    versions and column table, close.  The returned handle is what a
    serving reseed ships and what :func:`attach_context` re-validates
    against the file on every worker boot.
    """
    store = open_store(path)
    handle = store.handle()
    store.close()
    return handle


# ----------------------------------------------------------------------
# Attaching (the worker-side O(1) boot)
# ----------------------------------------------------------------------
def attach(handle: StoreHandle) -> Store:
    """Open the store a :class:`StoreHandle` points at and cross-check it.

    Fires the ``store_attach`` injection point first (chaos testing), and
    verifies that the file on disk is still byte-compatible with what the
    handle was minted from: same size, same index versions, same column
    table.  Any failure — including an injected one — surfaces as a
    typed :class:`~repro.engine.resilience.StoreError` so callers degrade
    to the pickle path uniformly.
    """
    try:
        faults.fire(faults.STORE_ATTACH)
        store = open_store(handle.path)
    except StoreError:
        raise
    except Exception as exc:
        raise StoreError("store attach failed", path=handle.path) from exc
    opened = store.handle()
    if opened != handle:
        store.close()
        raise StoreError(
            "store file changed since its handle was minted",
            path=handle.path,
            expected_versions=(handle.route_version, handle.transition_version),
            actual_versions=(opened.route_version, opened.transition_version),
        )
    return store


def attach_context(handle: StoreHandle):
    """Assemble a full :class:`~repro.engine.context.ExecutionContext`
    over store views, in O(1).

    The indexes install their columns lazily (``from_store``): nothing is
    decoded until a query touches it, so a worker boots in constant time
    regardless of dataset size and the OS shares the column pages between
    every process attached to the same file.
    """
    from repro.engine.context import ExecutionContext
    from repro.index.route_index import RouteIndex
    from repro.index.transition_index import TransitionIndex

    store = attach(handle)
    context = ExecutionContext(
        RouteIndex.from_store(store.route_columns()),
        TransitionIndex.from_store(store.transition_columns()),
    )
    context.store_handle = handle
    context._store_attachment = store
    return context
